#include "obs/flight_recorder.h"

#include <unistd.h>

#include <cstdlib>
#include <cstring>

#include "obs/clock.h"
#include "obs/crash_dump.h"
#include "obs/journal.h"
#include "obs/sigsafe_format.h"

namespace s3::obs {

const char* flight_kind_name(FlightKind kind) {
  switch (kind) {
    case FlightKind::kJournal:
      return "journal";
    case FlightKind::kSpanBegin:
      return "span_begin";
    case FlightKind::kSpanEnd:
      return "span_end";
    case FlightKind::kMark:
      return "mark";
  }
  return "unknown";
}

namespace {

using sigsafe::LineBuf;

thread_local Correlation t_correlation;

constexpr std::uint64_t kNoId = StrongId<JobTag>::kInvalid;

// Everything a record holds, as plain values. Shared by snapshot() and the
// signal-safe dump writer (which cannot touch std::string).
struct PlainRecord {
  std::uint64_t seq = 0;
  std::uint64_t ts_ns = 0;
  std::uint8_t kind = 0;
  std::uint16_t type = 0;
  const char* name = nullptr;
  const char* category = nullptr;
  std::uint64_t job = kNoId;
  std::uint64_t batch = kNoId;
  std::uint64_t node = kNoId;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  char detail[FlightRecorder::kDetailBytes] = {};
};

// Seqlock-style read: the record is only accepted when the commit word holds
// seq+1 on both sides of the field loads, so a slot being rewritten by its
// owning thread (ring wrap) is skipped instead of surfacing torn.
bool read_record(const FlightRecorder::Record& slot, std::uint64_t seq,
                 PlainRecord* out) {
  const std::uint64_t before = slot.commit.load(std::memory_order_acquire);
  if (before != seq + 1) return false;
  out->seq = seq;
  out->ts_ns = slot.ts_ns.load(std::memory_order_relaxed);
  out->kind = slot.kind.load(std::memory_order_relaxed);
  out->type = slot.type.load(std::memory_order_relaxed);
  out->name = slot.name.load(std::memory_order_relaxed);
  out->category = slot.category.load(std::memory_order_relaxed);
  out->job = slot.job.load(std::memory_order_relaxed);
  out->batch = slot.batch.load(std::memory_order_relaxed);
  out->node = slot.node.load(std::memory_order_relaxed);
  out->a = slot.a.load(std::memory_order_relaxed);
  out->b = slot.b.load(std::memory_order_relaxed);
  for (std::size_t w = 0; w < FlightRecorder::kDetailWords; ++w) {
    const std::uint64_t word = slot.detail[w].load(std::memory_order_relaxed);
    std::memcpy(out->detail + w * 8, &word, 8);
  }
  const std::uint64_t after = slot.commit.load(std::memory_order_acquire);
  return after == before;
}

void format_record(LineBuf* line, const PlainRecord& rec) {
  line->add_str("event seq=");
  line->add_u64(rec.seq);
  line->add_str(" ts_ns=");
  line->add_u64(rec.ts_ns);
  line->add_str(" kind=");
  line->add_str(flight_kind_name(static_cast<FlightKind>(rec.kind)));
  line->add_str(" name=");
  if (rec.category != nullptr) {
    line->add_str(rec.category);
    line->add_char(':');
  }
  line->add_str(rec.name != nullptr ? rec.name : "?");
  line->add_str(" job=");
  line->add_id(rec.job);
  line->add_str(" batch=");
  line->add_id(rec.batch);
  line->add_str(" node=");
  line->add_id(rec.node);
  line->add_str(" a=");
  line->add_u64(rec.a);
  line->add_str(" b=");
  line->add_u64(rec.b);
  line->add_str(" detail=");
  line->add_quoted(rec.detail, FlightRecorder::kDetailBytes);
  line->add_char('\n');
}

}  // namespace

Correlation current_correlation() { return t_correlation; }

CorrelationScope::CorrelationScope(JobId job, BatchId batch, NodeId node)
    : saved_(t_correlation) {
  if (job.valid()) t_correlation.job = job.value();
  if (batch.valid()) t_correlation.batch = batch.value();
  if (node.valid()) t_correlation.node = node.value();
}

CorrelationScope::~CorrelationScope() { t_correlation = saved_; }

FlightRecorder& FlightRecorder::instance() {
  // Leaked: rings must stay readable during crash handling and static
  // destruction. First use also arms the crash sink, so any instrumented
  // process gets black-box dumps without explicit wiring.
  static FlightRecorder* recorder = [] {
    auto* r = new FlightRecorder();
    install_crash_handler();
    return r;
  }();
  return *recorder;
}

FlightRecorder::FlightRecorder() {
  const char* env = std::getenv("S3_FLIGHT");
  if (env != nullptr && env[0] == '0' && env[1] == '\0') {
    enabled_.store(false, std::memory_order_relaxed);
  }
}

void FlightRecorder::set_enabled(bool enabled) {
  enabled_.store(enabled, std::memory_order_relaxed);
}

FlightRecorder::Ring* FlightRecorder::ring_for_this_thread() {
  thread_local Ring* ring = nullptr;
  if (ring == nullptr) {
    ring = new Ring();  // leaked: see class comment
    const std::size_t index =
        ring_count_.fetch_add(1, std::memory_order_acq_rel);
    ring->ordinal = static_cast<std::uint32_t>(index);
    if (index < kMaxThreads) {
      rings_[index].store(ring, std::memory_order_release);
    }
  }
  return ring;
}

void FlightRecorder::record_journal(const JournalEvent& event) {
  if (!enabled()) return;
  const Correlation corr = t_correlation;
  Ring* ring = ring_for_this_thread();
  const std::uint64_t seq = ring->head.load(std::memory_order_relaxed);
  Record& slot = ring->slots[seq % kRingCapacity];
  slot.commit.store(0, std::memory_order_release);
  slot.ts_ns.store(event.ts_ns != 0 ? event.ts_ns : now_ns(),
                   std::memory_order_relaxed);
  slot.kind.store(static_cast<std::uint8_t>(FlightKind::kJournal),
                  std::memory_order_relaxed);
  slot.type.store(static_cast<std::uint16_t>(event.type),
                  std::memory_order_relaxed);
  slot.name.store(journal_event_name(event.type), std::memory_order_relaxed);
  slot.category.store(nullptr, std::memory_order_relaxed);
  slot.job.store(event.job.valid() ? event.job.value() : corr.job,
                 std::memory_order_relaxed);
  slot.batch.store(event.batch.valid() ? event.batch.value() : corr.batch,
                   std::memory_order_relaxed);
  slot.node.store(event.node.valid() ? event.node.value() : corr.node,
                  std::memory_order_relaxed);
  slot.a.store(event.cursor, std::memory_order_relaxed);
  slot.b.store(event.wave, std::memory_order_relaxed);
  char packed[kDetailBytes] = {};
  const std::size_t copy = event.detail.size() < kDetailBytes - 1
                               ? event.detail.size()
                               : kDetailBytes - 1;
  std::memcpy(packed, event.detail.data(), copy);
  for (std::size_t w = 0; w < kDetailWords; ++w) {
    std::uint64_t word = 0;
    std::memcpy(&word, packed + w * 8, 8);
    slot.detail[w].store(word, std::memory_order_relaxed);
  }
  slot.commit.store(seq + 1, std::memory_order_release);
  ring->head.store(seq + 1, std::memory_order_release);
}

void FlightRecorder::record_span(FlightKind kind, const char* category,
                                 const char* name) {
  if (!enabled()) return;
  const Correlation corr = t_correlation;
  Ring* ring = ring_for_this_thread();
  const std::uint64_t seq = ring->head.load(std::memory_order_relaxed);
  Record& slot = ring->slots[seq % kRingCapacity];
  slot.commit.store(0, std::memory_order_release);
  slot.ts_ns.store(now_ns(), std::memory_order_relaxed);
  slot.kind.store(static_cast<std::uint8_t>(kind), std::memory_order_relaxed);
  slot.type.store(0, std::memory_order_relaxed);
  slot.name.store(name, std::memory_order_relaxed);
  slot.category.store(category, std::memory_order_relaxed);
  slot.job.store(corr.job, std::memory_order_relaxed);
  slot.batch.store(corr.batch, std::memory_order_relaxed);
  slot.node.store(corr.node, std::memory_order_relaxed);
  slot.a.store(0, std::memory_order_relaxed);
  slot.b.store(0, std::memory_order_relaxed);
  for (std::size_t w = 0; w < kDetailWords; ++w) {
    slot.detail[w].store(0, std::memory_order_relaxed);
  }
  slot.commit.store(seq + 1, std::memory_order_release);
  ring->head.store(seq + 1, std::memory_order_release);
}

void FlightRecorder::record_mark(const char* name, std::uint64_t a,
                                 std::uint64_t b) {
  if (!enabled()) return;
  const Correlation corr = t_correlation;
  Ring* ring = ring_for_this_thread();
  const std::uint64_t seq = ring->head.load(std::memory_order_relaxed);
  Record& slot = ring->slots[seq % kRingCapacity];
  slot.commit.store(0, std::memory_order_release);
  slot.ts_ns.store(now_ns(), std::memory_order_relaxed);
  slot.kind.store(static_cast<std::uint8_t>(FlightKind::kMark),
                  std::memory_order_relaxed);
  slot.type.store(0, std::memory_order_relaxed);
  slot.name.store(name, std::memory_order_relaxed);
  slot.category.store(nullptr, std::memory_order_relaxed);
  slot.job.store(corr.job, std::memory_order_relaxed);
  slot.batch.store(corr.batch, std::memory_order_relaxed);
  slot.node.store(corr.node, std::memory_order_relaxed);
  slot.a.store(a, std::memory_order_relaxed);
  slot.b.store(b, std::memory_order_relaxed);
  for (std::size_t w = 0; w < kDetailWords; ++w) {
    slot.detail[w].store(0, std::memory_order_relaxed);
  }
  slot.commit.store(seq + 1, std::memory_order_release);
  ring->head.store(seq + 1, std::memory_order_release);
}

std::vector<FlightRecorder::ThreadLog> FlightRecorder::snapshot() const {
  std::vector<ThreadLog> out;
  std::size_t count = ring_count_.load(std::memory_order_acquire);
  if (count > kMaxThreads) count = kMaxThreads;
  for (std::size_t i = 0; i < count; ++i) {
    const Ring* ring = rings_[i].load(std::memory_order_acquire);
    if (ring == nullptr) continue;
    ThreadLog log;
    log.ordinal = ring->ordinal;
    log.head = ring->head.load(std::memory_order_acquire);
    const std::uint64_t begin =
        log.head > kRingCapacity ? log.head - kRingCapacity : 0;
    log.overwritten = begin;
    for (std::uint64_t seq = begin; seq < log.head; ++seq) {
      PlainRecord rec;
      if (!read_record(ring->slots[seq % kRingCapacity], seq, &rec)) continue;
      RecordCopy copy;
      copy.seq = rec.seq;
      copy.ts_ns = rec.ts_ns;
      copy.kind = static_cast<FlightKind>(rec.kind);
      copy.type = rec.type;
      copy.name = rec.name;
      copy.category = rec.category;
      copy.job = rec.job;
      copy.batch = rec.batch;
      copy.node = rec.node;
      copy.a = rec.a;
      copy.b = rec.b;
      copy.detail.assign(rec.detail,
                         rec.detail + ::strnlen(rec.detail, kDetailBytes));
      log.records.push_back(std::move(copy));
    }
    out.push_back(std::move(log));
  }
  return out;
}

void FlightRecorder::dump_to_fd(int fd) const {
  LineBuf line;
  std::size_t count = ring_count_.load(std::memory_order_acquire);
  if (count > kMaxThreads) count = kMaxThreads;
  for (std::size_t i = 0; i < count; ++i) {
    const Ring* ring = rings_[i].load(std::memory_order_acquire);
    if (ring == nullptr) continue;
    const std::uint64_t head = ring->head.load(std::memory_order_acquire);
    const std::uint64_t begin =
        head > kRingCapacity ? head - kRingCapacity : 0;
    line.add_str("== flight thread=");
    line.add_u64(ring->ordinal);
    line.add_str(" head=");
    line.add_u64(head);
    line.add_str(" capacity=");
    line.add_u64(kRingCapacity);
    line.add_str(" overwritten=");
    line.add_u64(begin);
    line.add_char('\n');
    line.flush(fd);
    for (std::uint64_t seq = begin; seq < head; ++seq) {
      PlainRecord rec;
      if (!read_record(ring->slots[seq % kRingCapacity], seq, &rec)) continue;
      format_record(&line, rec);
      line.flush(fd);
    }
  }
}

}  // namespace s3::obs
