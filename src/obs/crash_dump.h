// Crash sink: turns any fatal exit into a timestamped s3-crash-*.txt black
// box. Registered two ways (DESIGN.md §16):
//
//  * As the common/ fatal hook — S3_CHECK / S3_CHECK_MSG / S3_POSTCONDITION
//    failures, lock-rank inversions (they abort via S3_CHECK_MSG), stale
//    DebugView aborts, and StatusOr::value() on error all funnel through
//    s3::internal::fatal_abort, which invokes the hook before std::abort.
//    The hook runs in normal (non-signal) context, so the dump carries the
//    full story: flight record, held lock ranks, and a metrics-registry
//    snapshot (which includes the phase-profiler counters).
//  * As a sigaction handler for SIGSEGV/SIGBUS/SIGILL/SIGFPE/SIGABRT. In
//    signal context only the async-signal-safe sections are written (flight
//    record + held ranks; no metrics — Registry::to_text locks and
//    allocates), then the default disposition is restored and the signal
//    re-raised so exit status and core dumps are unchanged.
//
// Installation is idempotent and happens automatically on first
// FlightRecorder use; binaries that want dumps from the very first
// instruction call install_crash_handler() from main.
//
// Dumps land in $S3_CRASH_DIR (or set_crash_dump_dir), default ".".
#pragma once

#include <string>

namespace s3::obs {

// Registers the fatal hook and the fatal-signal handlers. Idempotent.
void install_crash_handler();

// Directory for s3-crash-*.txt files. Overrides $S3_CRASH_DIR; paths longer
// than the internal fixed buffer (signal-safety) are truncated.
void set_crash_dump_dir(const std::string& dir);

// Composes and writes a full dump now from normal (non-signal) context —
// the same writer the fatal hook uses. Returns the dump path, or an empty
// string when the file could not be created. Used by tests and by
// operators' debug endpoints; does not abort.
std::string write_crash_dump(const char* reason);

}  // namespace s3::obs
