// Typed scheduler event journal: one record per Algorithm 1 / Partial Job
// Initialization decision, carrying the paper-invariant fields needed to
// replay the decision offline (DESIGN.md §11 maps each type to its paper
// construct). The journal is process-global and disabled by default; the
// scheduler call sites test enabled() before building an event, so the
// disabled cost is one relaxed atomic load per decision.
//
// Event vocabulary (producer in parentheses):
//   kJobAdmitted       (JobQueueManager) job j joined the queue at the scan
//                      cursor — Algorithm 1 line 2, J(ss) = current segment.
//   kLateJobJoined     (JobQueueManager) admission while a batch was in
//                      flight: dynamic sub-job adjustment aligns the job to
//                      the *next* wave.
//   kSubJobsMerged     (JobQueueManager) form_batch merged every aligned
//                      job's sub-job over the next wave — lines 1-4.
//   kCursorAdvanced    (JobQueueManager) the circular cursor moved past the
//                      formed wave — lines 10-13.
//   kBatchRetired      (JobQueueManager) the in-flight wave was accounted
//                      against every member — lines 5-9.
//   kJobCompleted      (JobQueueManager) a member consumed its last block
//                      and left the queue — line 7.
//   kBatchLaunched     (RealDriver) the merged batch started executing on
//                      the engine, stamped with virtual time.
//   kBatchExecuted     (RealDriver) engine execution finished; wall seconds
//                      were charged to the virtual timebase.
//   kSegmentRecomputed (S3Scheduler) dynamic wave sizing shrank/changed the
//                      segment from live slot availability — §IV-D-2.
//   kSlowNodeExcluded  (S3Scheduler) periodic slot checking excluded an
//                      estimated-slow node from the wave — §IV-D-1.
//
// Failure-domain vocabulary (DESIGN.md §12; every recovery decision the
// system makes lands here so chaos runs are fully auditable):
//   kNodeSuspected     (S3Scheduler) a node missed heartbeats past the
//                      suspect timeout; it still holds its slots but the
//                      scheduler is watching it.
//   kNodeDead          (S3Scheduler) heartbeat silence crossed the dead
//                      timeout, or the engine reported the node lost; its
//                      slots leave the wave-size computation permanently.
//   kTaskAttemptFailed (LocalEngine) one attempt of a task failed (injected
//                      transient, hang, node death, poison member, or a real
//                      read error); detail names the cause.
//   kTaskRetried       (LocalEngine) a failed attempt will be re-run; detail
//                      carries the exponential-backoff delay the watchdog
//                      models before the next attempt.
//   kTaskHung          (LocalEngine) the hung-task watchdog declared an
//                      attempt stuck after the configured timeout and
//                      abandoned it.
//   kReplicaFailedOver (FailoverBlockSource) a read skipped a dead/corrupt
//                      replica and was served by a surviving one.
//   kBlockCorrupt      (BlockStore/FailoverBlockSource) a replica failed its
//                      CRC32 checksum (or was marked corrupt by a fault
//                      plan).
//   kJobQuarantined    (LocalEngine/JobQueueManager) a poison member whose
//                      map/reduce fn kept failing was retired with an error
//                      status so its co-members can proceed.
//   kBatchRerun        (LocalEngine) the shared scan re-ran for the
//                      surviving members after a quarantine.
//
// Admission-service vocabulary (DESIGN.md §17; every front-door decision the
// submission service makes is journaled with the tenant in `detail`):
//   kServiceAdmitted   (SubmissionService) a submission passed its tenant's
//                      token bucket and queue bound and entered the bounded
//                      admission pipeline.
//   kServiceRejected   (SubmissionService) a typed rejection: kRejected
//                      (permanent — unknown tenant, closed service) or
//                      kRetryAfter (transient — rate/queue bound; detail
//                      carries the modeled backoff hint).
//   kServiceShed       (SubmissionService) the deadline-aware overload
//                      shedder dropped queued-but-not-running work (newest,
//                      lowest-priority first; expired deadlines before live
//                      ones). In-flight shared scans are never shed.
//   kServiceQuotaChanged (TenantRegistry) a tenant's quota was re-pointed at
//                      runtime (rate, burst, queue bound, concurrency,
//                      weight) — the chaos storms flap these.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/thread_annotations.h"
#include "common/types.h"

namespace s3::obs {

enum class JournalEventType {
  kJobAdmitted,
  kLateJobJoined,
  kSubJobsMerged,
  kCursorAdvanced,
  kBatchRetired,
  kJobCompleted,
  kBatchLaunched,
  kBatchExecuted,
  kSegmentRecomputed,
  kSlowNodeExcluded,
  kNodeSuspected,
  kNodeDead,
  kTaskAttemptFailed,
  kTaskRetried,
  kTaskHung,
  kReplicaFailedOver,
  kBlockCorrupt,
  kJobQuarantined,
  kBatchRerun,
  kServiceAdmitted,
  kServiceRejected,
  kServiceShed,
  kServiceQuotaChanged,
};

// Stable snake_case name, used by the Chrome-trace exporter and s3trace.
[[nodiscard]] const char* journal_event_name(JournalEventType type);

struct JournalEvent {
  JournalEventType type{};
  // Assigned by the journal under one lock: a total order over all decisions
  // that is consistent with the order each queue actually made them in.
  std::uint64_t seq = 0;
  std::uint64_t ts_ns = 0;  // wall clock (obs::now_ns), assigned on record
  // Virtual time where the producer knows it (driver-level events); negative
  // means "not in the virtual timebase" (queue-internal decisions).
  SimTime sim_time = -1.0;

  FileId file;
  JobId job;
  BatchId batch;
  NodeId node;
  std::uint64_t cursor = 0;     // scan cursor relevant to the decision
  std::uint64_t wave = 0;       // blocks in the wave / segment size
  std::uint64_t members = 0;    // jobs merged into the batch
  std::uint64_t remaining = 0;  // blocks the job still needs
  std::string detail;           // free-form specifics ("jobs=0,1,2")
};

class EventJournal {
 public:
  static EventJournal& instance();

  void set_enabled(bool enabled);
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  // True when a constructed event will land somewhere: in the journal
  // (enabled()) or in the always-on flight recorder's per-thread ring.
  // Producers gate event construction on this, not on enabled(), so the
  // black box keeps the last-N decisions even in otherwise unobserved runs.
  [[nodiscard]] bool observed() const;

  // Stamps ts_ns, forwards a copy to the flight recorder, and — when the
  // journal itself is enabled — stamps seq and appends. Thread-safe.
  void record(JournalEvent event);

  [[nodiscard]] std::vector<JournalEvent> snapshot() const;
  [[nodiscard]] std::vector<JournalEvent> drain();
  [[nodiscard]] std::size_t size() const;
  void clear();

 private:
  EventJournal() = default;

  mutable AnnotatedMutex mu_{LockRank::kObsJournal};
  std::vector<JournalEvent> events_ S3_GUARDED_BY(mu_);
  std::uint64_t next_seq_ S3_GUARDED_BY(mu_) = 0;
  std::atomic<bool> enabled_{false};
};

}  // namespace s3::obs
