// Per-phase execution profiling for the engine's locality work (the Metis
// `pmcs[MR_PHASES]` idea): each engine phase — map prefault, map, reduce
// prefault, reduce, merge — is timed and annotated with the page-fault work
// it caused (rusage minor/major fault deltas) and, when hardware counters
// are enabled and the OS grants perf_event_open, cycles / instructions /
// last-level-cache misses.
//
// Everything degrades gracefully: on platforms without <sys/resource.h> the
// fault deltas read 0; when perf_event_open is unavailable, denied
// (perf_event_paranoid), or not compiled in, has_hw_counters stays false and
// the sample carries timing + faults only. Enabling counters is a runtime
// switch (--phase-counters in the examples) so the default hot path never
// pays the three syscalls per phase.
//
// Fault deltas are process-wide (RUSAGE_SELF, as in Metis): when two engines
// run phases concurrently the attribution blurs across them. The engine runs
// its own phases strictly in sequence, so per-engine runs read exactly.
#pragma once

#include <cstdint>

#include "obs/trace.h"

namespace s3::obs {

// Phase vocabulary, mapped 1:1 onto Metis's task_type_t (MAP_PREFAULT, MAP,
// REDUCE_PREFAULT, REDUCE, MERGE). kMerge covers the engine's commit/merge
// of partial outputs rather than a dedicated merge wave.
enum class EnginePhase {
  kMapPrefault,
  kMap,
  kReducePrefault,
  kReduce,
  kMerge,
};
inline constexpr std::size_t kNumEnginePhases = 5;

// Stable lowercase name ("map_prefault", "map", ...) used in metric keys,
// span args, and s3trace output.
[[nodiscard]] const char* phase_name(EnginePhase phase);

// Process-global switch for the perf_event hardware counters. Off by
// default; the rusage fault deltas are always collected (two getrusage
// calls per phase).
void set_phase_counters_enabled(bool enabled);
[[nodiscard]] bool phase_counters_enabled();

struct PhaseSample {
  std::uint64_t wall_ns = 0;
  std::int64_t minor_faults = 0;
  std::int64_t major_faults = 0;
  // True only when all three hardware counters were captured.
  bool has_hw_counters = false;
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t llc_misses = 0;
};

// RAII phase scope. Construction snapshots rusage (and opens the perf
// counter group when enabled); stop() — or the destructor — computes the
// deltas, folds them into the metrics registry under
// engine.phase.<name>.{ns,minor_faults,major_faults,cycles,instructions,
// llc_misses}, and returns the sample.
class PhaseTimer {
 public:
  explicit PhaseTimer(EnginePhase phase);
  ~PhaseTimer();

  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

  // Idempotent; later calls return the first sample.
  PhaseSample stop();

  // Attaches the sample's fields as span args so phase costs show up in
  // s3trace / Perfetto next to the phase's span.
  static void annotate(SpanGuard& span, const PhaseSample& sample);

 private:
  EnginePhase phase_;
  bool stopped_ = false;
  PhaseSample sample_;
  std::uint64_t start_ns_ = 0;
  std::int64_t start_minor_ = 0;
  std::int64_t start_major_ = 0;
  // Perf counter group fds (cycles leads); -1 when unavailable/disabled.
  int fd_cycles_ = -1;
  int fd_instructions_ = -1;
  int fd_llc_misses_ = -1;
};

}  // namespace s3::obs
