// TraceSession: the one-line wiring between `--trace-out=<path>` and the
// observability layer. Constructing an active session enables the tracer and
// the scheduler journal; flush() (or destruction) drains both, writes the
// Chrome trace JSON to <path> and the metrics-registry dump to
// <path>.metrics.jsonl, then disables tracing again.
//
//   int main(int argc, char** argv) {
//     const s3::Flags flags = s3::Flags::parse(argc, argv);
//     s3::obs::TraceSession session(flags.get_string("trace-out"));
//     ... run ...
//   }  // trace written here
#pragma once

#include <string>

#include "common/flags.h"
#include "common/status.h"

namespace s3::obs {

class TraceSession {
 public:
  // Empty path → inert session (tracing stays off).
  explicit TraceSession(std::string path);
  // Reads --trace-out.
  explicit TraceSession(const Flags& flags)
      : TraceSession(flags.get_string("trace-out")) {}
  ~TraceSession();

  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  [[nodiscard]] bool active() const { return active_; }
  [[nodiscard]] const std::string& path() const { return path_; }

  // Drains tracer + journal and writes both artifacts; idempotent (the
  // second call is a no-op). Called by the destructor (errors logged).
  [[nodiscard]] Status flush();

 private:
  std::string path_;
  bool active_ = false;
};

}  // namespace s3::obs
