// Async-signal-safe text formatting for the crash-dump path: a fixed stack
// buffer, integer/string appenders, and a write(2) flush. No allocation, no
// stdio, no locale — usable from a SIGSEGV handler and from the fatal-abort
// hook alike (DESIGN.md §16 states the signal-safety rules).
#pragma once

#include <unistd.h>

#include <cstddef>
#include <cstdint>
#include <limits>

namespace s3::obs::sigsafe {

// Sentinel printed as "-": matches StrongId<...>::kInvalid, i.e. "this
// record is not attributed to a job/batch/node".
inline constexpr std::uint64_t kNoId =
    std::numeric_limits<std::uint64_t>::max();

struct LineBuf {
  char data[512];
  std::size_t len = 0;

  void add_char(char c) {
    if (len < sizeof(data)) data[len++] = c;
  }
  void add_str(const char* s) {
    for (; s != nullptr && *s != '\0'; ++s) add_char(*s);
  }
  void add_u64(std::uint64_t v) {
    char digits[20];
    std::size_t n = 0;
    do {
      digits[n++] = static_cast<char>('0' + v % 10);
      v /= 10;
    } while (v != 0);
    while (n > 0) add_char(digits[--n]);
  }
  void add_id(std::uint64_t v) {
    if (v == kNoId) {
      add_char('-');
    } else {
      add_u64(v);
    }
  }
  // Detail text goes between double quotes; quotes, backslashes, and control
  // characters are replaced so the line stays single-line and trivially
  // parseable.
  void add_quoted(const char* s, std::size_t max) {
    add_char('"');
    for (std::size_t i = 0; i < max && s[i] != '\0'; ++i) {
      const char c = s[i];
      add_char((c == '"' || c == '\\' || (c >= 0 && c < 0x20)) ? '.' : c);
    }
    add_char('"');
  }
  void flush(int fd) {
    std::size_t off = 0;
    while (off < len) {
      const ssize_t n = ::write(fd, data + off, len - off);
      if (n <= 0) break;
      off += static_cast<std::size_t>(n);
    }
    len = 0;
  }
};

}  // namespace s3::obs::sigsafe
