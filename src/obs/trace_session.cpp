#include "obs/trace_session.h"

#include <fstream>
#include <utility>

#include "common/logging.h"
#include "obs/chrome_trace.h"
#include "obs/journal.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace s3::obs {

TraceSession::TraceSession(std::string path) : path_(std::move(path)) {
  if (path_.empty()) return;
  active_ = true;
  Tracer::instance().clear();
  EventJournal::instance().clear();
  Tracer::instance().set_enabled(true);
  EventJournal::instance().set_enabled(true);
  S3_LOG(kInfo, "obs") << "tracing enabled, writing to " << path_;
}

Status TraceSession::flush() {
  if (!active_) return Status::ok();
  active_ = false;
  Tracer::instance().set_enabled(false);
  EventJournal::instance().set_enabled(false);

  auto spans = Tracer::instance().drain();
  auto journal = EventJournal::instance().drain();
  const std::uint64_t dropped = Tracer::instance().dropped();
  S3_LOG(kInfo, "obs") << "trace flush: " << spans.size() << " spans, "
                       << journal.size() << " journal events"
                       << (dropped > 0 ? " (TRUNCATED)" : "");
  S3_RETURN_IF_ERROR(write_chrome_trace_file(path_, std::move(spans),
                                             std::move(journal), dropped));

  const std::string metrics_path = path_ + ".metrics.jsonl";
  std::ofstream metrics_out(metrics_path, std::ios::binary | std::ios::trunc);
  if (!metrics_out.is_open()) {
    return Status::internal("cannot open metrics output file: " +
                            metrics_path);
  }
  metrics_out << Registry::instance().to_jsonl();
  metrics_out.close();
  if (!metrics_out.good()) {
    return Status::internal("failed writing metrics output file: " +
                            metrics_path);
  }
  return Status::ok();
}

TraceSession::~TraceSession() {
  const Status status = flush();
  if (!status.is_ok()) {
    S3_LOG(kError, "obs") << "trace flush failed: " << status.to_string();
  }
}

}  // namespace s3::obs
