// The sanctioned runtime timing source. All wall-clock measurement in src/
// flows through here (or through the SpanGuard tracer built on it) — the
// s3lint rule `raw-clock` forbids direct std::chrono clock reads elsewhere in
// src/, so every duration the system reports is attributable to one clock
// with one epoch and shows up in traces with consistent timestamps.
#pragma once

#include <chrono>
#include <cstdint>

namespace s3::obs {

// Monotonic nanoseconds since an arbitrary (per-process) epoch.
[[nodiscard]] inline std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Elapsed-seconds helper for drivers that charge wall time against a virtual
// timebase (RealDriver's time_scale).
[[nodiscard]] inline double seconds_since(std::uint64_t start_ns) {
  return static_cast<double>(now_ns() - start_ns) * 1e-9;
}

}  // namespace s3::obs
