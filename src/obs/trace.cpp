#include "obs/trace.h"

#include <utility>

namespace s3::obs {
namespace {

// Thread-local handle: shared_ptr so a ring outlives its thread and drain()
// still sees spans recorded by threads that have already exited.
thread_local std::shared_ptr<void> tls_ring;  // actually Tracer::Ring
thread_local std::uint32_t tls_tid = 0;

std::atomic<std::uint32_t> g_next_tid{1};

}  // namespace

Tracer& Tracer::instance() {
  static Tracer* tracer = new Tracer();  // leaked: outlives all threads
  return *tracer;
}

std::uint32_t Tracer::current_tid() {
  if (tls_tid == 0) {
    tls_tid = g_next_tid.fetch_add(1, std::memory_order_relaxed);
  }
  return tls_tid;
}

void Tracer::set_enabled(bool enabled) {
  enabled_.store(enabled, std::memory_order_relaxed);
}

std::shared_ptr<Tracer::Ring> Tracer::ring_for_this_thread() {
  auto ring = std::static_pointer_cast<Ring>(tls_ring);
  if (ring == nullptr) {
    ring = std::make_shared<Ring>();
    tls_ring = ring;
    MutexLock lock(mu_);
    rings_.push_back(ring);
  }
  return ring;
}

void Tracer::record(TraceEvent event) {
  const auto ring = ring_for_this_thread();
  std::vector<TraceEvent> overflow;
  {
    MutexLock lock(ring->mu);
    ring->events.push_back(std::move(event));
    if (ring->events.size() >= kRingCapacity) {
      overflow.swap(ring->events);
      ring->events.reserve(kRingCapacity);
    }
  }
  // The ring lock is released before the sink lock: record() never holds
  // both, so drain()'s sink-then-ring order cannot deadlock against it.
  if (!overflow.empty()) spill(std::move(overflow));
}

void Tracer::spill(std::vector<TraceEvent> events) {
  MutexLock lock(mu_);
  for (auto& event : events) {
    if (sink_.size() >= kMaxSinkEvents) {
      dropped_ += 1;
      continue;
    }
    sink_.push_back(std::move(event));
  }
}

std::vector<TraceEvent> Tracer::drain() {
  std::vector<TraceEvent> out;
  MutexLock lock(mu_);
  out.swap(sink_);
  for (const auto& ring : rings_) {
    MutexLock ring_lock(ring->mu);
    for (auto& event : ring->events) {
      if (out.size() >= kMaxSinkEvents) {
        dropped_ += 1;
        continue;
      }
      out.push_back(std::move(event));
    }
    ring->events.clear();
  }
  return out;
}

void Tracer::clear() {
  MutexLock lock(mu_);
  sink_.clear();
  dropped_ = 0;
  for (const auto& ring : rings_) {
    MutexLock ring_lock(ring->mu);
    ring->events.clear();
  }
}

std::uint64_t Tracer::dropped() const {
  MutexLock lock(mu_);
  return dropped_;
}

}  // namespace s3::obs
