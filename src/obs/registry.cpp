#include "obs/registry.h"

#include <cmath>
#include <limits>

#include "common/strings.h"
#include "metrics/jsonl.h"

namespace s3::obs {

std::size_t LogHistogram::bucket_index(std::uint64_t value) {
  if (value == 0) return 0;
  // floor(log2(value)) via bit width; bucket b holds [2^(b-1), 2^b).
  std::size_t log2 = 0;
  while (value >>= 1) ++log2;
  const std::size_t index = log2 + 1;
  return index < kBuckets ? index : kBuckets - 1;
}

double LogHistogram::bucket_upper_edge(std::size_t index) {
  if (index == 0) return 0.0;  // bucket 0 holds exactly {0}
  if (index >= kBuckets - 1) return std::numeric_limits<double>::infinity();
  return std::ldexp(1.0, static_cast<int>(index));  // 2^index
}

void LogHistogram::observe(std::uint64_t value) {
  buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t LogHistogram::count() const {
  std::uint64_t total = 0;
  for (const auto& b : buckets_) total += b.load(std::memory_order_relaxed);
  return total;
}

std::uint64_t LogHistogram::bucket(std::size_t index) const {
  return buckets_[index].load(std::memory_order_relaxed);
}

double LogHistogram::quantile(double q) const {
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const std::uint64_t total = count();
  if (total == 0) return 0.0;
  // Rank of the q-quantile sample, 1-based; q = 0 maps to the first sample.
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(total)));
  const std::uint64_t target = rank == 0 ? 1 : rank;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen >= target) return bucket_upper_edge(i);
  }
  return bucket_upper_edge(kBuckets - 1);
}

void LogHistogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

Registry& Registry::instance() {
  static Registry* registry = new Registry();  // leaked: process-wide
  return *registry;
}

namespace {

// Find-or-create; the caller holds the registry writer lock. A shared-lock
// fast path is deliberately absent: call sites cache the returned reference,
// so lookups are rare (first touch per site) and simplicity wins.
template <typename T>
T& intern(std::map<std::string, std::unique_ptr<T>>& map,
          const std::string& name) {
  auto it = map.find(name);
  if (it == map.end()) {
    it = map.emplace(name, std::make_unique<T>()).first;
  }
  return *it->second;
}

}  // namespace

Counter& Registry::counter(const std::string& name) {
  WriterMutexLock lock(mu_);
  return intern(counters_, name);
}

Gauge& Registry::gauge(const std::string& name) {
  WriterMutexLock lock(mu_);
  return intern(gauges_, name);
}

LogHistogram& Registry::histogram(const std::string& name) {
  WriterMutexLock lock(mu_);
  return intern(histograms_, name);
}

std::string Registry::to_text() const {
  ReaderMutexLock lock(mu_);
  std::string out;
  for (const auto& [name, c] : counters_) {
    out += name + " " + std::to_string(c->value()) + "\n";
  }
  for (const auto& [name, g] : gauges_) {
    out += name + " " + format_double(g->value(), -1) + "\n";
  }
  for (const auto& [name, h] : histograms_) {
    out += name + " count=" + std::to_string(h->count()) +
           " p50=" + format_double(h->p50(), -1) +
           " p95=" + format_double(h->p95(), -1) +
           " p99=" + format_double(h->p99(), -1) + "\n";
  }
  return out;
}

std::string Registry::to_jsonl() const {
  ReaderMutexLock lock(mu_);
  std::string out;
  for (const auto& [name, c] : counters_) {
    metrics::JsonObject record;
    record.field("metric", name)
        .field("type", std::string("counter"))
        .field("value", c->value());
    out += record.str();
    out += '\n';
  }
  for (const auto& [name, g] : gauges_) {
    metrics::JsonObject record;
    record.field("metric", name)
        .field("type", std::string("gauge"))
        .field("value", g->value());
    out += record.str();
    out += '\n';
  }
  for (const auto& [name, h] : histograms_) {
    metrics::JsonObject record;
    record.field("metric", name)
        .field("type", std::string("histogram"))
        .field("count", h->count())
        .field("p50", h->p50())
        .field("p95", h->p95())
        .field("p99", h->p99());
    out += record.str();
    out += '\n';
  }
  return out;
}

MetricsSnapshot Registry::snapshot_metrics() const {
  ReaderMutexLock lock(mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace_back(name, g->value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    snap.histograms.push_back(
        MetricsSnapshot::Histogram{name, h->count(), h->p50(), h->p95(),
                                   h->p99()});
  }
  return snap;
}

void Registry::reset_for_test() {
  WriterMutexLock lock(mu_);
  for (const auto& [name, c] : counters_) c->reset();
  for (const auto& [name, g] : gauges_) g->reset();
  for (const auto& [name, h] : histograms_) h->reset();
}

}  // namespace s3::obs
