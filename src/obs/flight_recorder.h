// Always-on black-box flight recorder: every thread keeps a lock-free ring
// of its last kRingCapacity journal events, span edges, and marks, so a
// crash (S3_CHECK failure, lock-rank inversion, stale-view abort, fatal
// signal) can dump the final seconds of scheduler/engine activity even when
// no TraceSession was ever opened. This is the black box the Chrome tracer
// is not: the tracer is opt-in and unbounded, the flight recorder is on by
// default and strictly bounded (DESIGN.md §16).
//
// Design constraints, in order:
//  * Hot-path cost: one relaxed atomic load when disabled; when enabled (the
//    default) a record is ~a dozen relaxed stores into the calling thread's
//    own ring plus one release store to publish — no locks, no allocation
//    after a thread's first record. Budget: ≤2% on BM_MapRunnerEndToEnd,
//    enforced by check.sh --flight.
//  * Crash readable: every record field is a word-sized relaxed atomic and
//    every name is a pointer to a static string, so the crash-dump writer
//    can walk all rings from a signal handler (or from another thread while
//    writers are live) without locks, malloc, or torn reads — a per-record
//    commit word (seqlock-style) lets it skip in-flight slots. Rings are
//    leaked on thread exit on purpose: a dead worker's last events are
//    exactly what a post-mortem needs.
//  * Attribution: records carry the ambient job/batch/node correlation ids
//    propagated via CorrelationScope (JobQueueManager → S3Scheduler →
//    LocalEngine → map_runner/reduce_runner/shuffle), so a dump names the
//    work that was in flight, not just the code location.
//
// Disable with S3_FLIGHT=0 in the environment (overhead A/B runs) or
// set_enabled(false) (tests).
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace s3::obs {

struct JournalEvent;

enum class FlightKind : std::uint8_t {
  kJournal = 1,    // one typed scheduler/failure-domain journal event
  kSpanBegin = 2,  // a SpanGuard opened (tracer enabled or not)
  kSpanEnd = 3,    // the matching close
  kMark = 4,       // a point event from S3_FLIGHT_MARK
};

[[nodiscard]] const char* flight_kind_name(FlightKind kind);

// The ambient correlation for the calling thread; records snapshot it at
// write time. kInvalid fields mean "not attributed".
struct Correlation {
  std::uint64_t job = StrongId<JobTag>::kInvalid;
  std::uint64_t batch = StrongId<BatchTag>::kInvalid;
  std::uint64_t node = StrongId<NodeTag>::kInvalid;
};

[[nodiscard]] Correlation current_correlation();

// RAII overlay on the thread's correlation: fields passed as valid ids are
// set for the scope, invalid ones inherit the enclosing scope's value, and
// the previous correlation is restored on exit. Scopes do not cross thread
// boundaries — a task lambda running on a pool worker opens its own.
class CorrelationScope {
 public:
  CorrelationScope(JobId job, BatchId batch, NodeId node);
  ~CorrelationScope();

  CorrelationScope(const CorrelationScope&) = delete;
  CorrelationScope& operator=(const CorrelationScope&) = delete;

 private:
  Correlation saved_;
};

class FlightRecorder {
 public:
  // Records a thread retains; sized so a ring outlives any single wave
  // (a wave writes two span edges per task plus a handful of journal
  // events) while keeping the per-thread footprint ~40 KiB.
  static constexpr std::size_t kRingCapacity = 256;
  // Rings registered for dumping; threads beyond this still record locally
  // but are invisible to dumps (far above any real worker count).
  static constexpr std::size_t kMaxThreads = 256;
  static constexpr std::size_t kDetailWords = 6;  // 48 bytes of detail text
  static constexpr std::size_t kDetailBytes = kDetailWords * 8;

  // One slot. Fields are individually atomic (relaxed) so a concurrent
  // dumper never races; `commit` holds seq+1 of the occupying record and is
  // the last store (release) — a reader that sees the same commit value on
  // both sides of its field loads has a consistent record.
  struct Record {
    std::atomic<std::uint64_t> commit{0};
    std::atomic<std::uint64_t> ts_ns{0};
    std::atomic<std::uint8_t> kind{0};
    std::atomic<std::uint16_t> type{0};  // JournalEventType for kJournal
    std::atomic<const char*> name{nullptr};      // static string only
    std::atomic<const char*> category{nullptr};  // static string only
    std::atomic<std::uint64_t> job{StrongId<JobTag>::kInvalid};
    std::atomic<std::uint64_t> batch{StrongId<BatchTag>::kInvalid};
    std::atomic<std::uint64_t> node{StrongId<NodeTag>::kInvalid};
    std::atomic<std::uint64_t> a{0};
    std::atomic<std::uint64_t> b{0};
    // Truncated copy of the event's dynamic detail, packed 8 chars per word
    // so the bytes stay atomically readable.
    std::array<std::atomic<std::uint64_t>, kDetailWords> detail{};
  };

  struct Ring {
    std::array<Record, kRingCapacity> slots;
    // Records this thread ever wrote; slot for seq s is s % kRingCapacity.
    std::atomic<std::uint64_t> head{0};
    std::uint32_t ordinal = 0;  // stable dump label, assigned at registration
  };

  static FlightRecorder& instance();

  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool enabled);

  // Producers. Each snapshots the thread's ambient correlation; journal
  // events prefer their own explicit ids where valid.
  void record_journal(const JournalEvent& event);
  void record_span(FlightKind kind, const char* category, const char* name);
  void record_mark(const char* name, std::uint64_t a, std::uint64_t b);

  // Plain-struct copy of one record, for snapshots and tests.
  struct RecordCopy {
    std::uint64_t seq = 0;
    std::uint64_t ts_ns = 0;
    FlightKind kind{};
    std::uint16_t type = 0;
    const char* name = nullptr;
    const char* category = nullptr;
    std::uint64_t job = StrongId<JobTag>::kInvalid;
    std::uint64_t batch = StrongId<BatchTag>::kInvalid;
    std::uint64_t node = StrongId<NodeTag>::kInvalid;
    std::uint64_t a = 0;
    std::uint64_t b = 0;
    std::string detail;
  };
  struct ThreadLog {
    std::uint32_t ordinal = 0;
    std::uint64_t head = 0;         // records ever written by the thread
    std::uint64_t overwritten = 0;  // records lost to ring wrap
    std::vector<RecordCopy> records;  // oldest first; torn slots skipped
  };

  // Consistent best-effort copy of every registered ring. Safe to call
  // while other threads record (in-flight slots are skipped).
  [[nodiscard]] std::vector<ThreadLog> snapshot() const;

  // Async-signal-safe dump of every ring to `fd` in the crash-dump text
  // format ("== flight thread=..." sections; see DESIGN.md §16). Uses only
  // write(2) and stack buffers.
  void dump_to_fd(int fd) const;

 private:
  FlightRecorder();

  Ring* ring_for_this_thread();

  std::atomic<bool> enabled_{true};
  std::array<std::atomic<Ring*>, kMaxThreads> rings_{};
  std::atomic<std::size_t> ring_count_{0};
};

}  // namespace s3::obs

// Point event in the flight record (never the Chrome trace): cheap enough
// for always-on use at shuffle/runner milestones the journal does not cover.
#define S3_FLIGHT_MARK(name, a, b) \
  ::s3::obs::FlightRecorder::instance().record_mark((name), (a), (b))
