// Chrome trace_event JSON export (the "JSON Array Format" both chrome://
// tracing and Perfetto load). Spans become "X" (complete) events on their
// recording thread's track; journal records become "i" (instant) events on a
// dedicated scheduler track with every paper-invariant field in args.
//
// The output is deterministic for a given event list: events are sorted by
// (start time, tid, name), timestamps are normalized so the earliest event
// sits at ts=0, and each event is emitted on its own line — golden-file
// testable, and greppable by tools/s3trace without a full JSON parser.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "obs/journal.h"
#include "obs/trace.h"

namespace s3::obs {

// Renders the full trace document. `dropped` > 0 adds a metadata event so a
// truncated trace announces itself inside the viewer.
[[nodiscard]] std::string to_chrome_trace_json(
    std::vector<TraceEvent> spans, std::vector<JournalEvent> journal,
    std::uint64_t dropped = 0);

// Writes the document to `path` (overwrites).
[[nodiscard]] Status write_chrome_trace_file(const std::string& path,
                                             std::vector<TraceEvent> spans,
                                             std::vector<JournalEvent> journal,
                                             std::uint64_t dropped = 0);

// The tid the scheduler-journal track uses in the exported trace (spans use
// their real per-thread ordinals, which start at 1).
inline constexpr std::uint32_t kJournalTrackTid = 0;

}  // namespace s3::obs
