#include "obs/phase_profiler.h"

#include <atomic>
#include <string>

#include "obs/clock.h"
#include "obs/registry.h"

#if defined(__has_include)
#if __has_include(<sys/resource.h>)
#define S3_HAVE_RUSAGE 1
#include <sys/resource.h>
#endif
#endif

#if defined(__linux__) && defined(__has_include)
#if __has_include(<linux/perf_event.h>) && __has_include(<sys/syscall.h>)
#define S3_HAVE_PERF_EVENT 1
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cstring>
#endif
#endif

namespace s3::obs {
namespace {

std::atomic<bool> g_phase_counters_enabled{false};

struct FaultSnapshot {
  std::int64_t minor = 0;
  std::int64_t major = 0;
};

FaultSnapshot read_faults() {
  FaultSnapshot snap;
#if defined(S3_HAVE_RUSAGE)
  rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) == 0) {
    snap.minor = static_cast<std::int64_t>(ru.ru_minflt);
    snap.major = static_cast<std::int64_t>(ru.ru_majflt);
  }
#endif
  return snap;
}

#if defined(S3_HAVE_PERF_EVENT)
// Opens one hardware counter for the calling thread; -1 on any failure
// (missing PMU, perf_event_paranoid, seccomp, containers without the
// syscall...). group_fd links the three counters so they start and stop as a
// unit; the leader passes -1.
int open_hw_counter(std::uint64_t config, int group_fd) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.type = PERF_TYPE_HARDWARE;
  attr.size = sizeof(attr);
  attr.config = config;
  attr.disabled = (group_fd == -1) ? 1 : 0;
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  return static_cast<int>(
      syscall(__NR_perf_event_open, &attr, 0, -1, group_fd, 0));
}

bool read_hw_counter(int fd, std::uint64_t& out) {
  if (fd < 0) return false;
  std::uint64_t value = 0;
  if (read(fd, &value, sizeof(value)) != sizeof(value)) return false;
  out = value;
  return true;
}
#endif  // S3_HAVE_PERF_EVENT

void record_phase_metrics(EnginePhase phase, const PhaseSample& sample) {
  auto& registry = Registry::instance();
  const std::string prefix = std::string("engine.phase.") + phase_name(phase);
  registry.histogram(prefix + ".ns").observe(sample.wall_ns);
  if (sample.minor_faults > 0) {
    registry.counter(prefix + ".minor_faults")
        .add(static_cast<std::uint64_t>(sample.minor_faults));
  }
  if (sample.major_faults > 0) {
    registry.counter(prefix + ".major_faults")
        .add(static_cast<std::uint64_t>(sample.major_faults));
  }
  if (sample.has_hw_counters) {
    registry.counter(prefix + ".cycles").add(sample.cycles);
    registry.counter(prefix + ".instructions").add(sample.instructions);
    registry.counter(prefix + ".llc_misses").add(sample.llc_misses);
  }
}

}  // namespace

const char* phase_name(EnginePhase phase) {
  switch (phase) {
    case EnginePhase::kMapPrefault:
      return "map_prefault";
    case EnginePhase::kMap:
      return "map";
    case EnginePhase::kReducePrefault:
      return "reduce_prefault";
    case EnginePhase::kReduce:
      return "reduce";
    case EnginePhase::kMerge:
      return "merge";
  }
  return "unknown";
}

void set_phase_counters_enabled(bool enabled) {
  g_phase_counters_enabled.store(enabled, std::memory_order_relaxed);
}

bool phase_counters_enabled() {
  return g_phase_counters_enabled.load(std::memory_order_relaxed);
}

PhaseTimer::PhaseTimer(EnginePhase phase) : phase_(phase) {
#if defined(S3_HAVE_PERF_EVENT)
  if (phase_counters_enabled()) {
    fd_cycles_ = open_hw_counter(PERF_COUNT_HW_CPU_CYCLES, -1);
    if (fd_cycles_ >= 0) {
      fd_instructions_ = open_hw_counter(PERF_COUNT_HW_INSTRUCTIONS,
                                         fd_cycles_);
      fd_llc_misses_ = open_hw_counter(PERF_COUNT_HW_CACHE_MISSES, fd_cycles_);
    }
    // All three or none: a partial group would report misleading ratios.
    if (fd_instructions_ < 0 || fd_llc_misses_ < 0) {
      if (fd_llc_misses_ >= 0) close(fd_llc_misses_);
      if (fd_instructions_ >= 0) close(fd_instructions_);
      if (fd_cycles_ >= 0) close(fd_cycles_);
      fd_cycles_ = fd_instructions_ = fd_llc_misses_ = -1;
    }
    if (fd_cycles_ >= 0) {
      ioctl(fd_cycles_, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
      ioctl(fd_cycles_, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
    }
  }
#endif
  const FaultSnapshot faults = read_faults();
  start_minor_ = faults.minor;
  start_major_ = faults.major;
  start_ns_ = now_ns();
}

PhaseTimer::~PhaseTimer() { stop(); }

PhaseSample PhaseTimer::stop() {
  if (stopped_) return sample_;
  stopped_ = true;
  sample_.wall_ns = now_ns() - start_ns_;
  const FaultSnapshot faults = read_faults();
  sample_.minor_faults = faults.minor - start_minor_;
  sample_.major_faults = faults.major - start_major_;
#if defined(S3_HAVE_PERF_EVENT)
  if (fd_cycles_ >= 0) {
    ioctl(fd_cycles_, PERF_EVENT_IOC_DISABLE, PERF_IOC_FLAG_GROUP);
    sample_.has_hw_counters = read_hw_counter(fd_cycles_, sample_.cycles) &&
                              read_hw_counter(fd_instructions_,
                                              sample_.instructions) &&
                              read_hw_counter(fd_llc_misses_,
                                              sample_.llc_misses);
    if (!sample_.has_hw_counters) {
      sample_.cycles = sample_.instructions = sample_.llc_misses = 0;
    }
    close(fd_llc_misses_);
    close(fd_instructions_);
    close(fd_cycles_);
    fd_cycles_ = fd_instructions_ = fd_llc_misses_ = -1;
  }
#endif
  record_phase_metrics(phase_, sample_);
  return sample_;
}

void PhaseTimer::annotate(SpanGuard& span, const PhaseSample& sample) {
  if (!span.active()) return;
  span.arg("phase_ns", sample.wall_ns);
  span.arg("minor_faults", static_cast<std::uint64_t>(
                               sample.minor_faults > 0 ? sample.minor_faults
                                                       : 0));
  span.arg("major_faults", static_cast<std::uint64_t>(
                               sample.major_faults > 0 ? sample.major_faults
                                                       : 0));
  if (sample.has_hw_counters) {
    span.arg("cycles", sample.cycles);
    span.arg("instructions", sample.instructions);
    span.arg("llc_misses", sample.llc_misses);
  }
}

}  // namespace s3::obs
