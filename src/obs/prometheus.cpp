#include "obs/prometheus.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <utility>

#include "common/logging.h"
#include "common/strings.h"
#include "common/thread_pool.h"

namespace s3::obs {
namespace {

// Prometheus spells infinities "+Inf"/"-Inf"; everything else goes through
// the shortest-round-trip formatter the text dumps already use.
std::string prometheus_value(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  return format_double(v, -1);
}

}  // namespace

std::string prometheus_metric_name(const std::string& name) {
  std::string out = "s3_";
  out.reserve(name.size() + 3);
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string export_prometheus(const Registry& registry) {
  const MetricsSnapshot snap = registry.snapshot_metrics();
  std::string out;
  for (const auto& [name, value] : snap.counters) {
    const std::string mangled = prometheus_metric_name(name);
    out += "# TYPE " + mangled + " counter\n";
    out += mangled + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    const std::string mangled = prometheus_metric_name(name);
    out += "# TYPE " + mangled + " gauge\n";
    out += mangled + " " + prometheus_value(value) + "\n";
  }
  for (const auto& hist : snap.histograms) {
    const std::string mangled = prometheus_metric_name(hist.name);
    out += "# TYPE " + mangled + " summary\n";
    out += mangled + "{quantile=\"0.5\"} " + prometheus_value(hist.p50) + "\n";
    out +=
        mangled + "{quantile=\"0.95\"} " + prometheus_value(hist.p95) + "\n";
    out +=
        mangled + "{quantile=\"0.99\"} " + prometheus_value(hist.p99) + "\n";
    out += mangled + "_count " + std::to_string(hist.count) + "\n";
  }
  return out;
}

Status write_prometheus_file(const Registry& registry,
                             const std::string& path) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.is_open()) {
      return Status::internal("cannot open snapshot tmp file: " + tmp);
    }
    out << export_prometheus(registry);
    out.close();
    if (!out.good()) {
      return Status::internal("failed writing snapshot tmp file: " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::internal("cannot rename snapshot into place: " + path);
  }
  return Status::ok();
}

SnapshotExporter::SnapshotExporter(std::string path, std::int64_t interval_ms)
    : path_(std::move(path)),
      interval_ms_(interval_ms > 0 ? interval_ms : 500) {
  if (path_.empty()) return;
  pool_ = std::make_unique<ThreadPool>(1);
  if (!pool_->submit([this] { run_loop(); })) {
    pool_.reset();
    return;
  }
  S3_LOG(kInfo, "obs") << "snapshot exporter writing " << path_ << " every "
                       << interval_ms_ << " ms";
}

void SnapshotExporter::run_loop() {
  for (;;) {
    {
      MutexLock lock(mu_);
      if (!stop_) {
        (void)lock.wait_for(cv_, std::chrono::milliseconds(interval_ms_));
      }
      if (stop_) return;  // stop() writes the final snapshot
    }
    const Status status = write_prometheus_file(Registry::instance(), path_);
    if (!status.is_ok()) {
      S3_LOG(kWarn, "obs") << "snapshot write failed: " << status.to_string();
    }
  }
}

void SnapshotExporter::stop() {
  if (pool_ == nullptr) return;
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  pool_->shutdown();
  pool_.reset();
  const Status status = write_prometheus_file(Registry::instance(), path_);
  if (!status.is_ok()) {
    S3_LOG(kWarn, "obs") << "final snapshot write failed: "
                         << status.to_string();
  }
}

SnapshotExporter::~SnapshotExporter() { stop(); }

}  // namespace s3::obs
