#include "obs/chrome_trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <limits>

#include "metrics/jsonl.h"

namespace s3::obs {
namespace {

// Microseconds with fixed 3-decimal precision: deterministic across
// platforms (no %g wobble) and fine-grained enough for ns-scale spans.
std::string format_us(std::uint64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%03u", ns / 1000,
                static_cast<unsigned>(ns % 1000));
  return buf;
}

void append_args(std::string* out, const std::vector<TraceArg>& args) {
  if (args.empty()) return;
  *out += ",\"args\":{";
  bool first = true;
  for (const TraceArg& arg : args) {
    if (!first) *out += ',';
    first = false;
    *out += '"' + metrics::JsonObject::escape(arg.key) + "\":";
    if (arg.is_number) {
      *out += std::to_string(arg.number);
    } else {
      *out += '"' + metrics::JsonObject::escape(arg.text) + '"';
    }
  }
  *out += '}';
}

void append_id_arg(std::vector<TraceArg>* args, const char* key,
                   std::uint64_t value, std::uint64_t invalid) {
  if (value == invalid) return;
  args->push_back(TraceArg{key, {}, value, true});
}

// Lowers a journal record onto the generic arg list the emitters share.
std::vector<TraceArg> journal_args(const JournalEvent& event) {
  std::vector<TraceArg> args;
  args.push_back(TraceArg{"seq", {}, event.seq, true});
  constexpr std::uint64_t kInvalid = StrongId<JobTag>::kInvalid;
  append_id_arg(&args, "file", event.file.value(), kInvalid);
  append_id_arg(&args, "job", event.job.value(), kInvalid);
  append_id_arg(&args, "batch", event.batch.value(), kInvalid);
  append_id_arg(&args, "node", event.node.value(), kInvalid);
  args.push_back(TraceArg{"cursor", {}, event.cursor, true});
  args.push_back(TraceArg{"wave", {}, event.wave, true});
  args.push_back(TraceArg{"members", {}, event.members, true});
  args.push_back(TraceArg{"remaining", {}, event.remaining, true});
  if (event.sim_time >= 0.0) {
    args.push_back(TraceArg{
        "sim_time", {},
        static_cast<std::uint64_t>(event.sim_time * 1e6), true});
  }
  if (!event.detail.empty()) {
    args.push_back(TraceArg{"detail", event.detail, 0, false});
  }
  return args;
}

}  // namespace

std::string to_chrome_trace_json(std::vector<TraceEvent> spans,
                                 std::vector<JournalEvent> journal,
                                 std::uint64_t dropped) {
  std::sort(spans.begin(), spans.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              if (a.tid != b.tid) return a.tid < b.tid;
              return a.name < b.name;
            });
  std::sort(journal.begin(), journal.end(),
            [](const JournalEvent& a, const JournalEvent& b) {
              return a.seq < b.seq;
            });

  // Normalize all timestamps to the earliest event in the document.
  std::uint64_t epoch = std::numeric_limits<std::uint64_t>::max();
  for (const TraceEvent& span : spans) {
    epoch = std::min(epoch, span.start_ns);
  }
  for (const JournalEvent& event : journal) {
    epoch = std::min(epoch, event.ts_ns);
  }
  if (epoch == std::numeric_limits<std::uint64_t>::max()) epoch = 0;

  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  const auto emit = [&](const std::string& line) {
    if (!first) out += ",\n";
    first = false;
    out += line;
  };

  emit("{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\",\"args\":{"
       "\"name\":\"s3\"}}");
  emit("{\"ph\":\"M\",\"pid\":1,\"tid\":" +
       std::to_string(kJournalTrackTid) +
       ",\"name\":\"thread_name\",\"args\":{\"name\":\"scheduler journal\"}}");
  if (dropped > 0) {
    emit("{\"ph\":\"M\",\"pid\":1,\"name\":\"trace_truncated\",\"args\":{"
         "\"dropped_events\":" +
         std::to_string(dropped) + "}}");
  }

  for (const TraceEvent& span : spans) {
    const std::uint64_t dur =
        span.end_ns >= span.start_ns ? span.end_ns - span.start_ns : 0;
    std::string line = "{\"ph\":\"X\",\"pid\":1,\"tid\":" +
                       std::to_string(span.tid) +
                       ",\"ts\":" + format_us(span.start_ns - epoch) +
                       ",\"dur\":" + format_us(dur) + ",\"cat\":\"" +
                       metrics::JsonObject::escape(span.category) +
                       "\",\"name\":\"" +
                       metrics::JsonObject::escape(span.name) + '"';
    append_args(&line, span.args);
    line += '}';
    emit(line);
  }

  for (const JournalEvent& event : journal) {
    std::string line = "{\"ph\":\"i\",\"pid\":1,\"tid\":" +
                       std::to_string(kJournalTrackTid) +
                       ",\"ts\":" + format_us(event.ts_ns - epoch) +
                       ",\"s\":\"p\",\"cat\":\"journal\",\"name\":\"" +
                       journal_event_name(event.type) + '"';
    append_args(&line, journal_args(event));
    line += '}';
    emit(line);
  }

  out += "\n],\n\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

Status write_chrome_trace_file(const std::string& path,
                               std::vector<TraceEvent> spans,
                               std::vector<JournalEvent> journal,
                               std::uint64_t dropped) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) {
    return Status::internal("cannot open trace output file: " + path);
  }
  out << to_chrome_trace_json(std::move(spans), std::move(journal), dropped);
  out.close();
  if (!out.good()) {
    return Status::internal("failed writing trace output file: " + path);
  }
  return Status::ok();
}

}  // namespace s3::obs
