#include "obs/journal.h"

#include "obs/clock.h"
#include "obs/flight_recorder.h"

namespace s3::obs {

const char* journal_event_name(JournalEventType type) {
  switch (type) {
    case JournalEventType::kJobAdmitted:
      return "job_admitted";
    case JournalEventType::kLateJobJoined:
      return "late_job_joined";
    case JournalEventType::kSubJobsMerged:
      return "sub_jobs_merged";
    case JournalEventType::kCursorAdvanced:
      return "cursor_advanced";
    case JournalEventType::kBatchRetired:
      return "batch_retired";
    case JournalEventType::kJobCompleted:
      return "job_completed";
    case JournalEventType::kBatchLaunched:
      return "batch_launched";
    case JournalEventType::kBatchExecuted:
      return "batch_executed";
    case JournalEventType::kSegmentRecomputed:
      return "segment_recomputed";
    case JournalEventType::kSlowNodeExcluded:
      return "slow_node_excluded";
    case JournalEventType::kNodeSuspected:
      return "node_suspected";
    case JournalEventType::kNodeDead:
      return "node_dead";
    case JournalEventType::kTaskAttemptFailed:
      return "task_attempt_failed";
    case JournalEventType::kTaskRetried:
      return "task_retried";
    case JournalEventType::kTaskHung:
      return "task_hung";
    case JournalEventType::kReplicaFailedOver:
      return "replica_failed_over";
    case JournalEventType::kBlockCorrupt:
      return "block_corrupt";
    case JournalEventType::kJobQuarantined:
      return "job_quarantined";
    case JournalEventType::kBatchRerun:
      return "batch_rerun";
    case JournalEventType::kServiceAdmitted:
      return "service_admitted";
    case JournalEventType::kServiceRejected:
      return "service_rejected";
    case JournalEventType::kServiceShed:
      return "service_shed";
    case JournalEventType::kServiceQuotaChanged:
      return "service_quota_changed";
  }
  return "unknown";
}

EventJournal& EventJournal::instance() {
  static EventJournal* journal = new EventJournal();  // leaked: process-wide
  return *journal;
}

void EventJournal::set_enabled(bool enabled) {
  enabled_.store(enabled, std::memory_order_relaxed);
}

bool EventJournal::observed() const {
  return enabled() || FlightRecorder::instance().enabled();
}

void EventJournal::record(JournalEvent event) {
  event.ts_ns = now_ns();
  // The flight recorder keeps its own enabled flag; the copy is a fixed
  // number of relaxed stores into the calling thread's ring, so the
  // always-on path never takes the journal lock.
  FlightRecorder::instance().record_journal(event);
  if (!enabled()) return;
  MutexLock lock(mu_);
  event.seq = next_seq_++;
  events_.push_back(std::move(event));
}

std::vector<JournalEvent> EventJournal::snapshot() const {
  MutexLock lock(mu_);
  return events_;
}

std::vector<JournalEvent> EventJournal::drain() {
  MutexLock lock(mu_);
  std::vector<JournalEvent> out;
  out.swap(events_);
  return out;
}

std::size_t EventJournal::size() const {
  MutexLock lock(mu_);
  return events_.size();
}

void EventJournal::clear() {
  MutexLock lock(mu_);
  events_.clear();
  next_seq_ = 0;
}

}  // namespace s3::obs
