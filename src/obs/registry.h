// Process-global metrics registry: named counters, gauges, and fixed-bucket
// log2-scale histograms with quantile extraction. Replaces ad-hoc accounting
// on the runtime paths — metrics are always on (each observation is one or
// two relaxed atomics), only trace spans and the journal are gated.
//
// Hot paths cache the reference once:
//   static auto& tasks = obs::Registry::instance().counter("engine.map_tasks");
//   tasks.add();
// Metric objects are never destroyed or moved once created (the registry
// stores them behind unique_ptr and reset_for_test() zeroes values in
// place), so cached references stay valid for the process lifetime.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/thread_annotations.h"

namespace s3::obs {

class Counter {
 public:
  void add(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double value) { value_.store(value, std::memory_order_relaxed); }
  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Log2-bucketed histogram over non-negative integer samples (typically
// nanoseconds). Bucket 0 holds the value 0; bucket b in [1, 62] holds
// [2^(b-1), 2^b); bucket 63 is the overflow bucket for v >= 2^62. Fixed
// footprint, wait-free observe, ~2x worst-case quantile error — the right
// trade for runtime latency tracking (exact stats stay in common/stats.h).
class LogHistogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void observe(std::uint64_t value);

  [[nodiscard]] std::uint64_t count() const;
  [[nodiscard]] std::uint64_t bucket(std::size_t index) const;

  // Upper edge of the bucket holding the q-quantile (q in [0, 1]): 0 for an
  // empty histogram, +infinity when the quantile lands in the overflow
  // bucket. Monotone in q; a one-sample histogram reports that sample's
  // bucket edge for every q.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double p50() const { return quantile(0.50); }
  [[nodiscard]] double p95() const { return quantile(0.95); }
  [[nodiscard]] double p99() const { return quantile(0.99); }

  void reset();

  [[nodiscard]] static std::size_t bucket_index(std::uint64_t value);
  // Exclusive upper edge of a bucket (inf for the overflow bucket).
  [[nodiscard]] static double bucket_upper_edge(std::size_t index);

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
};

// Point-in-time copy of every registered metric, decoupled from the
// registry lock so exporters (Prometheus text, crash dumps, s3top feeds)
// can format without holding kObsMetrics.
struct MetricsSnapshot {
  struct Histogram {
    std::string name;
    std::uint64_t count = 0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
  };
  std::vector<std::pair<std::string, std::uint64_t>> counters;  // sorted
  std::vector<std::pair<std::string, double>> gauges;           // sorted
  std::vector<Histogram> histograms;                            // sorted
};

class Registry {
 public:
  static Registry& instance();

  // Finds or creates; the returned reference is valid forever.
  [[nodiscard]] Counter& counter(const std::string& name);
  [[nodiscard]] Gauge& gauge(const std::string& name);
  [[nodiscard]] LogHistogram& histogram(const std::string& name);

  // Human-readable dump: one "name value" line per metric, histograms with
  // count/p50/p95/p99, all sorted by name.
  [[nodiscard]] std::string to_text() const;
  // Machine-readable dump via the metrics/jsonl emitter: one JSON object per
  // line, {"metric":..,"type":"counter|gauge|histogram",...}.
  [[nodiscard]] std::string to_jsonl() const;

  // Values-only copy (names sorted within each kind, matching the map
  // order); the exporters' input.
  [[nodiscard]] MetricsSnapshot snapshot_metrics() const;

  // Zeroes every metric's value in place. Entries (and any references
  // call sites cached) stay alive.
  void reset_for_test();

 private:
  Registry() = default;

  mutable AnnotatedSharedMutex mu_{LockRank::kObsMetrics};
  std::map<std::string, std::unique_ptr<Counter>> counters_
      S3_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ S3_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<LogHistogram>> histograms_
      S3_GUARDED_BY(mu_);
};

}  // namespace s3::obs
