// Low-overhead span tracer. Worker threads append completed spans to
// thread-local ring buffers; a full ring spills (amortized, one lock) into a
// process-global sink, and drain() collects everything for export. When
// tracing is disabled the only cost at an instrumented site is one relaxed
// atomic load, so instrumentation can stay compiled into the hot paths
// (acceptance target: unmeasurable overhead disabled, <=5% enabled).
//
// Usage:
//   S3_TRACE_SPAN("engine", "map_task");                  // whole scope
//   S3_TRACE_SPAN_NAMED(span, "engine", "map_task");      // + attach args
//   if (span.active()) span.arg("block", block.value());
//
// Lock order: a thread-local ring's mutex is never held while acquiring the
// tracer's sink mutex (spills swap the ring contents out first), and drain()
// takes sink-then-ring, so the two orders cannot deadlock.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_annotations.h"
#include "obs/clock.h"
#include "obs/flight_recorder.h"

namespace s3::obs {

struct TraceArg {
  std::string key;
  std::string text;        // used when is_number == false
  std::uint64_t number = 0;  // used when is_number == true
  bool is_number = false;
};

struct TraceEvent {
  std::string name;
  std::string category;
  std::uint32_t tid = 0;   // small per-thread ordinal, not the OS tid
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
  std::vector<TraceArg> args;
};

class Tracer {
 public:
  static Tracer& instance();

  void set_enabled(bool enabled);
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  // Appends one completed span to the calling thread's ring buffer.
  void record(TraceEvent event);

  // Flushes every thread's ring into the sink and returns the accumulated
  // events (sink is left empty). Safe to call while other threads record.
  [[nodiscard]] std::vector<TraceEvent> drain();

  // Drops all buffered events and resets the dropped-event count.
  void clear();

  // Events discarded because the sink hit its cap (tracing left enabled far
  // beyond a bounded run). Exported so a truncated trace is never silent.
  [[nodiscard]] std::uint64_t dropped() const;

  // Small stable ordinal for the calling thread (assigned on first use).
  [[nodiscard]] static std::uint32_t current_tid();

  // Sink cap: beyond this many buffered events, new spans are dropped (and
  // counted) instead of growing without bound.
  static constexpr std::size_t kMaxSinkEvents = 1u << 20;
  // Ring capacity per thread before an amortized spill into the sink.
  static constexpr std::size_t kRingCapacity = 4096;

 private:
  struct Ring {
    mutable AnnotatedMutex mu{LockRank::kObsTraceRing};
    std::vector<TraceEvent> events S3_GUARDED_BY(mu);
  };

  Tracer() = default;

  [[nodiscard]] std::shared_ptr<Ring> ring_for_this_thread();
  void spill(std::vector<TraceEvent> events);

  std::atomic<bool> enabled_{false};
  mutable AnnotatedMutex mu_{LockRank::kObsTraceSink};
  std::vector<std::shared_ptr<Ring>> rings_ S3_GUARDED_BY(mu_);
  std::vector<TraceEvent> sink_ S3_GUARDED_BY(mu_);
  std::uint64_t dropped_ S3_GUARDED_BY(mu_) = 0;
};

// RAII span: captures start time at construction when tracing is enabled and
// records the completed span at scope exit. Args attached while inactive are
// ignored, so call sites need no enabled() checks of their own.
//
// Independent of the tracer, every span's begin/end edges also land in the
// always-on flight recorder (lock-free per-thread ring, correlation ids
// attached from the ambient CorrelationScope), so a crash dump shows what
// each thread was inside even when no TraceSession was open.
class SpanGuard {
 public:
  SpanGuard(const char* category, const char* name) {
    FlightRecorder& flight = FlightRecorder::instance();
    if (flight.enabled()) {
      flight_ = true;
      flight_category_ = category;
      flight_name_ = name;
      flight.record_span(FlightKind::kSpanBegin, category, name);
    }
    if (Tracer::instance().enabled()) {
      active_ = true;
      event_.category = category;
      event_.name = name;
      event_.start_ns = now_ns();
    }
  }
  ~SpanGuard() { end(); }

  // Ends the span now instead of at scope exit; later calls (including the
  // destructor's) are no-ops.
  void end() {
    if (flight_) {
      flight_ = false;
      FlightRecorder::instance().record_span(FlightKind::kSpanEnd,
                                             flight_category_, flight_name_);
    }
    if (active_) {
      active_ = false;
      event_.end_ns = now_ns();
      event_.tid = Tracer::current_tid();
      Tracer::instance().record(std::move(event_));
    }
  }

  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

  [[nodiscard]] bool active() const { return active_; }

  SpanGuard& arg(std::string key, std::uint64_t value) {
    if (active_) {
      event_.args.push_back(TraceArg{std::move(key), {}, value, true});
    }
    return *this;
  }
  SpanGuard& arg(std::string key, std::string value) {
    if (active_) {
      event_.args.push_back(TraceArg{std::move(key), std::move(value), 0,
                                     false});
    }
    return *this;
  }

 private:
  bool active_ = false;
  bool flight_ = false;
  const char* flight_category_ = nullptr;
  const char* flight_name_ = nullptr;
  TraceEvent event_;
};

}  // namespace s3::obs

#define S3_OBS_CONCAT2(a, b) a##b
#define S3_OBS_CONCAT(a, b) S3_OBS_CONCAT2(a, b)

// Traces the enclosing scope as one span.
#define S3_TRACE_SPAN(category, name) \
  ::s3::obs::SpanGuard S3_OBS_CONCAT(s3_trace_span_, __LINE__)(category, name)

// Same, but binds the guard to `var` so the site can attach args.
#define S3_TRACE_SPAN_NAMED(var, category, name) \
  ::s3::obs::SpanGuard var(category, name)
