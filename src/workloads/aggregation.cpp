#include "workloads/aggregation.h"

#include <charconv>

#include "common/status.h"
#include "dfs/reader.h"
#include "workloads/tpch.h"

namespace s3::workloads {

void AvgPriceMapper::map(const dfs::Record& record, engine::Emitter& out) {
  if (record.data.empty()) return;
  const auto fields = dfs::split_fields(record.data);
  if (fields.size() < static_cast<std::size_t>(tpch::kNumColumns)) return;
  // Key: l_returnflag; value: "price|1".
  value_buf_.assign(fields[tpch::kExtendedPrice]);
  value_buf_ += "|1";
  out.emit(fields[tpch::kReturnFlag], value_buf_);
}

std::pair<double, std::uint64_t> parse_pair(std::string_view value) {
  const auto sep = value.find('|');
  S3_CHECK_MSG(sep != std::string_view::npos, "malformed pair: " << value);
  double sum = 0.0;
  const auto [sp, sec] = std::from_chars(value.data(), value.data() + sep, sum);
  S3_CHECK_MSG(sec == std::errc{} && sp == value.data() + sep,
               "malformed sum: " << value);
  std::uint64_t count = 0;
  const auto* begin = value.data() + sep + 1;
  const auto* end = value.data() + value.size();
  const auto [p, ec] = std::from_chars(begin, end, count);
  S3_CHECK_MSG(ec == std::errc{} && p == end, "malformed count: " << value);
  return {sum, count};
}

void PairSumReducer::reduce(std::string_view key,
                            const std::vector<std::string_view>& values,
                            engine::Emitter& out) {
  double sum = 0.0;
  std::uint64_t count = 0;
  for (const auto v : values) {
    const auto [s, c] = parse_pair(v);
    sum += s;
    count += c;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f|%llu", sum,
                static_cast<unsigned long long>(count));
  out.emit(key, buf);
}

std::map<std::string, Average> extract_averages(
    const engine::JobResult& result) {
  std::map<std::string, Average> out;
  for (const auto& kv : result.output) {
    const auto [sum, count] = parse_pair(kv.value);
    Average& avg = out[kv.key];
    avg.sum += sum;
    avg.count += count;
  }
  return out;
}

engine::JobSpec make_avg_price_job(JobId id, FileId input,
                                   std::uint32_t reduce_tasks) {
  engine::JobSpec spec;
  spec.id = id;
  spec.name = "avg-price-by-returnflag";
  spec.input = input;
  spec.mapper_factory = [] { return std::make_unique<AvgPriceMapper>(); };
  spec.reducer_factory = [] { return std::make_unique<PairSumReducer>(); };
  spec.combiner_factory = [] { return std::make_unique<PairSumReducer>(); };
  spec.num_reduce_tasks = reduce_tasks;
  return spec;
}

}  // namespace s3::workloads
