#include "workloads/tpch.h"

#include <charconv>

namespace s3::workloads::tpch {
namespace {

constexpr const char* kShipInstructs[] = {"DELIVER IN PERSON", "COLLECT COD",
                                          "NONE", "TAKE BACK RETURN"};
constexpr const char* kShipModes[] = {"TRUCK", "MAIL",    "SHIP", "AIR",
                                      "FOB",   "REG AIR", "RAIL"};
constexpr const char* kComments[] = {
    "carefully final deposits",  "quickly ironic requests",
    "pending packages haggle",   "furiously bold accounts",
    "slyly regular instructions", "express pinto beans nag"};

std::string date(std::uint64_t days_since_1992) {
  // Bounded intermediates keep snprintf's worst case within buf (the compiler
  // checks the %u ranges under -Wformat-truncation).
  const unsigned year =
      static_cast<unsigned>(1992 + days_since_1992 / 365) % 10000u;
  const unsigned month = 1 + static_cast<unsigned>(days_since_1992 / 30) % 12;
  const unsigned day = 1 + static_cast<unsigned>(days_since_1992 % 28);
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04u-%02u-%02u", year, month, day);
  return buf;
}

}  // namespace

LineitemGenerator::LineitemGenerator(std::uint64_t seed) : seed_(seed) {}

std::string LineitemGenerator::row(std::uint64_t row_index) const {
  std::uint64_t sm = seed_ ^ (row_index * 0xd1342543de82ef95ULL + 11);
  Rng rng(splitmix64(sm));

  const std::uint64_t orderkey = row_index / 4 + 1;
  const std::uint64_t linenumber = row_index % 4 + 1;
  const std::uint64_t partkey = rng.uniform_u64(200000) + 1;
  const std::uint64_t suppkey = rng.uniform_u64(10000) + 1;
  const std::int64_t quantity = rng.uniform_int(1, 50);
  const double price = static_cast<double>(quantity) *
                       (900.0 + rng.uniform(0.0, 200.0));
  const double discount = 0.01 * static_cast<double>(rng.uniform_int(0, 10));
  const double tax = 0.01 * static_cast<double>(rng.uniform_int(0, 8));
  const char returnflag = "RAN"[rng.uniform_u64(3)];
  const char linestatus = "OF"[rng.uniform_u64(2)];
  const std::uint64_t ship = rng.uniform_u64(2400);

  std::string out;
  out.reserve(160);
  char num[40];
  const auto append_u64 = [&](std::uint64_t v) {
    const auto [p, ec] = std::to_chars(num, num + sizeof(num), v);
    out.append(num, p);
    out.push_back('|');
  };
  append_u64(orderkey);
  append_u64(partkey);
  append_u64(suppkey);
  append_u64(linenumber);
  append_u64(static_cast<std::uint64_t>(quantity));
  std::snprintf(num, sizeof(num), "%.2f|%.2f|%.2f|", price, discount, tax);
  out += num;
  out.push_back(returnflag);
  out.push_back('|');
  out.push_back(linestatus);
  out.push_back('|');
  out += date(ship) + '|';
  out += date(ship + 30) + '|';
  out += date(ship + 60) + '|';
  out += kShipInstructs[rng.uniform_u64(std::size(kShipInstructs))];
  out.push_back('|');
  out += kShipModes[rng.uniform_u64(std::size(kShipModes))];
  out.push_back('|');
  out += kComments[rng.uniform_u64(std::size(kComments))];
  return out;
}

std::string LineitemGenerator::generate_block(std::uint64_t block_index,
                                              ByteSize bytes) const {
  S3_CHECK(bytes.count() > 0);
  // Rows average ~140 bytes; give each block a disjoint row-index range.
  const std::uint64_t rows_per_block = bytes.count() / 100 + 1;
  std::uint64_t row_index = block_index * rows_per_block;
  std::string out;
  out.reserve(bytes.count() + 256);
  while (true) {
    std::string r = row(row_index++);
    r.push_back('\n');
    if (out.size() + r.size() > bytes.count() && !out.empty()) break;
    out += r;
    if (out.size() >= bytes.count()) break;
  }
  return out;
}

StatusOr<FileId> LineitemGenerator::generate_file(
    dfs::DfsNamespace& ns, dfs::BlockStore& store,
    dfs::PlacementPolicy& placement, const std::string& name,
    std::uint64_t num_blocks, ByteSize block_size, int replication) const {
  if (num_blocks == 0) return Status::invalid_argument("need >= 1 block");
  auto file_or = ns.create_file(name, block_size);
  if (!file_or.is_ok()) return file_or.status();
  const FileId file = file_or.value();
  for (std::uint64_t b = 0; b < num_blocks; ++b) {
    std::string payload = generate_block(b, block_size);
    auto block_or = ns.append_block(file, ByteSize(payload.size()));
    if (!block_or.is_ok()) return block_or.status();
    S3_RETURN_IF_ERROR(
        ns.set_replicas(block_or.value(), placement.place(b, replication)));
    S3_RETURN_IF_ERROR(store.put(block_or.value(), std::move(payload)));
  }
  return file;
}

SelectionMapper::SelectionMapper(int max_quantity)
    : max_quantity_(max_quantity) {
  S3_CHECK(max_quantity >= 1 && max_quantity <= 50);
}

void SelectionMapper::map(const dfs::Record& record, engine::Emitter& out) {
  if (record.data.empty()) return;
  const auto fields = dfs::split_fields(record.data);
  if (fields.size() < static_cast<std::size_t>(kNumColumns)) return;  // skip malformed
  int quantity = 0;
  const auto q = fields[kQuantity];
  const auto [p, ec] = std::from_chars(q.data(), q.data() + q.size(), quantity);
  if (ec != std::errc{} || p != q.data() + q.size()) return;
  if (quantity > max_quantity_) return;
  key_buf_.assign(fields[kOrderKey]);
  key_buf_.push_back(':');
  key_buf_.append(fields[kLineNumber]);
  value_buf_.assign(fields[kQuantity]);
  value_buf_.push_back('|');
  value_buf_.append(fields[kExtendedPrice]);
  out.emit(key_buf_, value_buf_);
}

void IdentityReducer::reduce(std::string_view key,
                             const std::vector<std::string_view>& values,
                             engine::Emitter& out) {
  for (const auto v : values) out.emit(key, v);
}

engine::JobSpec make_selection_job(JobId id, FileId input, int max_quantity,
                                   std::uint32_t reduce_tasks) {
  engine::JobSpec spec;
  spec.id = id;
  spec.name = "selection[q<=" + std::to_string(max_quantity) + "]";
  spec.input = input;
  spec.mapper_factory = [max_quantity] {
    return std::make_unique<SelectionMapper>(max_quantity);
  };
  spec.reducer_factory = [] { return std::make_unique<IdentityReducer>(); };
  spec.num_reduce_tasks = reduce_tasks;
  return spec;
}

}  // namespace s3::workloads::tpch
