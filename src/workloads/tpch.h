// TPC-H lineitem substitute (§V-G): a deterministic 16-column lineitem row
// generator in the standard '|'-delimited text format, plus the paper's
// selection workload — a SQL-like predicate picking ~10 % of tuples
// (l_quantity is uniform over 1..50, so "l_quantity <= 5" selects 10 %).
#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/types.h"
#include "dfs/block_store.h"
#include "dfs/dfs_namespace.h"
#include "dfs/placement.h"
#include "engine/job.h"
#include "engine/mapper.h"

namespace s3::workloads::tpch {

// Column indexes of the lineitem text format.
enum Column : int {
  kOrderKey = 0,
  kPartKey,
  kSuppKey,
  kLineNumber,
  kQuantity,
  kExtendedPrice,
  kDiscount,
  kTax,
  kReturnFlag,
  kLineStatus,
  kShipDate,
  kCommitDate,
  kReceiptDate,
  kShipInstruct,
  kShipMode,
  kComment,
  kNumColumns,
};

class LineitemGenerator {
 public:
  explicit LineitemGenerator(std::uint64_t seed = 7);

  // One '|'-delimited row; deterministic in (seed, row_index).
  [[nodiscard]] std::string row(std::uint64_t row_index) const;

  // One block payload of rows, about `bytes` long, starting at a row index
  // derived from the block index (so blocks are independent).
  [[nodiscard]] std::string generate_block(std::uint64_t block_index,
                                           ByteSize bytes) const;

  [[nodiscard]] StatusOr<FileId> generate_file(
      dfs::DfsNamespace& ns, dfs::BlockStore& store,
      dfs::PlacementPolicy& placement, const std::string& name,
      std::uint64_t num_blocks, ByteSize block_size,
      int replication = 1) const;

 private:
  std::uint64_t seed_;
};

// SELECT l_orderkey, l_quantity, l_extendedprice FROM lineitem
// WHERE l_quantity <= max_quantity;   (max_quantity = 5 → ~10 % selectivity)
class SelectionMapper final : public engine::Mapper {
 public:
  explicit SelectionMapper(int max_quantity = 5);
  void map(const dfs::Record& record, engine::Emitter& out) override;

 private:
  int max_quantity_;
  std::string key_buf_;    // reused "orderkey:linenumber" scratch
  std::string value_buf_;  // reused "quantity|price" scratch
};

// Pass-through reducer (selection has no aggregation); emits each value.
class IdentityReducer final : public engine::Reducer {
 public:
  void reduce(std::string_view key,
              const std::vector<std::string_view>& values,
              engine::Emitter& out) override;
};

[[nodiscard]] engine::JobSpec make_selection_job(JobId id, FileId input,
                                                 int max_quantity,
                                                 std::uint32_t reduce_tasks);

}  // namespace s3::workloads::tpch
