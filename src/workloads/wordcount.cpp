#include "workloads/wordcount.h"

#include <charconv>

#include "common/status.h"

namespace s3::workloads {
namespace {

// Iterates whitespace-separated words of a record without copying.
template <typename Fn>
void for_each_word(std::string_view line, Fn&& fn) {
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && line[i] == ' ') ++i;
    std::size_t j = i;
    while (j < line.size() && line[j] != ' ') ++j;
    if (j > i) fn(line.substr(i, j - i));
    i = j;
  }
}

std::int64_t parse_int(const std::string& s) {
  std::int64_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  S3_CHECK_MSG(ec == std::errc{} && ptr == s.data() + s.size(),
               "non-numeric count value: '" << s << "'");
  return v;
}

}  // namespace

PatternWordCountMapper::PatternWordCountMapper(std::string prefix)
    : prefix_(std::move(prefix)) {}

void PatternWordCountMapper::map(const dfs::Record& record,
                                 engine::Emitter& out) {
  for_each_word(record.data, [&](std::string_view word) {
    if (word.size() >= prefix_.size() &&
        word.substr(0, prefix_.size()) == prefix_) {
      out.emit(std::string(word), "1");
    }
  });
}

HeavyWordCountMapper::HeavyWordCountMapper(int amplify) : amplify_(amplify) {
  S3_CHECK(amplify >= 1);
}

void HeavyWordCountMapper::map(const dfs::Record& record,
                               engine::Emitter& out) {
  for_each_word(record.data, [&](std::string_view word) {
    out.emit(std::string(word), "1");
    for (int a = 1; a < amplify_; ++a) {
      // Tagged duplicates create distinct keys, inflating reduce output the
      // way the paper's heavy workload does.
      out.emit(std::string(word) + '#' + std::to_string(a), "1");
    }
  });
}

void SumReducer::reduce(const std::string& key,
                        const std::vector<std::string>& values,
                        engine::Emitter& out) {
  std::int64_t sum = 0;
  for (const auto& v : values) sum += parse_int(v);
  out.emit(key, std::to_string(sum));
}

engine::JobSpec make_wordcount_job(JobId id, FileId input, std::string prefix,
                                   std::uint32_t reduce_tasks,
                                   bool with_combiner) {
  engine::JobSpec spec;
  spec.id = id;
  spec.name = "wordcount[" + prefix + "]";
  spec.input = input;
  spec.mapper_factory = [prefix = std::move(prefix)] {
    return std::make_unique<PatternWordCountMapper>(prefix);
  };
  spec.reducer_factory = [] { return std::make_unique<SumReducer>(); };
  if (with_combiner) {
    spec.combiner_factory = [] { return std::make_unique<SumReducer>(); };
  }
  spec.num_reduce_tasks = reduce_tasks;
  return spec;
}

engine::JobSpec make_heavy_wordcount_job(JobId id, FileId input, int amplify,
                                         std::uint32_t reduce_tasks) {
  engine::JobSpec spec;
  spec.id = id;
  spec.name = "wordcount-heavy[x" + std::to_string(amplify) + "]";
  spec.input = input;
  spec.mapper_factory = [amplify] {
    return std::make_unique<HeavyWordCountMapper>(amplify);
  };
  spec.reducer_factory = [] { return std::make_unique<SumReducer>(); };
  spec.combiner_factory = [] { return std::make_unique<SumReducer>(); };
  spec.num_reduce_tasks = reduce_tasks;
  return spec;
}

}  // namespace s3::workloads
