#include "workloads/wordcount.h"

#include <charconv>

#include "common/status.h"
#include "workloads/tokenize.h"

namespace s3::workloads {
namespace {

std::int64_t parse_int(std::string_view s) {
  std::int64_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  S3_CHECK_MSG(ec == std::errc{} && ptr == s.data() + s.size(),
               "non-numeric count value: '" << s << "'");
  return v;
}

}  // namespace

PatternWordCountMapper::PatternWordCountMapper(std::string prefix)
    : prefix_(std::move(prefix)) {}

void PatternWordCountMapper::map(const dfs::Record& record,
                                 engine::Emitter& out) {
  for_each_word(record.data, [&](std::string_view word) {
    if (word.size() >= prefix_.size() &&
        word.substr(0, prefix_.size()) == prefix_) {
      out.emit(word, "1");
    }
  });
}

HeavyWordCountMapper::HeavyWordCountMapper(int amplify) : amplify_(amplify) {
  S3_CHECK(amplify >= 1);
}

void HeavyWordCountMapper::map(const dfs::Record& record,
                               engine::Emitter& out) {
  for_each_word(record.data, [&](std::string_view word) {
    out.emit(word, "1");
    if (amplify_ <= 1) return;
    // Tagged duplicates create distinct keys, inflating reduce output the
    // way the paper's heavy workload does. The tag is built in a reused
    // buffer: only the digits after "word#" change per amplification step.
    tag_buf_.assign(word);
    tag_buf_.push_back('#');
    const std::size_t stem = tag_buf_.size();
    char digits[16];
    for (int a = 1; a < amplify_; ++a) {
      const auto [p, ec] = std::to_chars(digits, digits + sizeof(digits), a);
      S3_CHECK(ec == std::errc{});
      tag_buf_.resize(stem);
      tag_buf_.append(digits, p);
      out.emit(tag_buf_, "1");
    }
  });
}

void SumReducer::reduce(std::string_view key,
                        const std::vector<std::string_view>& values,
                        engine::Emitter& out) {
  std::int64_t sum = 0;
  for (const auto v : values) sum += parse_int(v);
  char digits[24];
  const auto [p, ec] = std::to_chars(digits, digits + sizeof(digits), sum);
  S3_CHECK(ec == std::errc{});
  out.emit(key, std::string_view(digits, static_cast<std::size_t>(p - digits)));
}

engine::JobSpec make_wordcount_job(JobId id, FileId input, std::string prefix,
                                   std::uint32_t reduce_tasks,
                                   bool with_combiner) {
  engine::JobSpec spec;
  spec.id = id;
  spec.name = "wordcount[" + prefix + "]";
  spec.input = input;
  spec.mapper_factory = [prefix = std::move(prefix)] {
    return std::make_unique<PatternWordCountMapper>(prefix);
  };
  spec.reducer_factory = [] { return std::make_unique<SumReducer>(); };
  if (with_combiner) {
    spec.combiner_factory = [] { return std::make_unique<SumReducer>(); };
  }
  spec.num_reduce_tasks = reduce_tasks;
  return spec;
}

engine::JobSpec make_heavy_wordcount_job(JobId id, FileId input, int amplify,
                                         std::uint32_t reduce_tasks) {
  engine::JobSpec spec;
  spec.id = id;
  spec.name = "wordcount-heavy[x" + std::to_string(amplify) + "]";
  spec.input = input;
  spec.mapper_factory = [amplify] {
    return std::make_unique<HeavyWordCountMapper>(amplify);
  };
  spec.reducer_factory = [] { return std::make_unique<SumReducer>(); };
  spec.combiner_factory = [] { return std::make_unique<SumReducer>(); };
  spec.num_reduce_tasks = reduce_tasks;
  return spec;
}

}  // namespace s3::workloads
