// The paper's wordcount workloads (§V-B): wordcount modified to count only
// words matching a user-specified pattern, so different patterns make
// different jobs over the same input. The heavy variant counts every word
// and amplifies its output, mirroring the paper's "10x map output, 200x
// reduce output" configuration.
#pragma once

#include <string>

#include "engine/job.h"
#include "engine/mapper.h"

namespace s3::workloads {

// Matches words that start with `prefix` (empty prefix matches every word).
class PatternWordCountMapper final : public engine::Mapper {
 public:
  explicit PatternWordCountMapper(std::string prefix);
  void map(const dfs::Record& record, engine::Emitter& out) override;

 private:
  std::string prefix_;
};

// Heavy variant: counts every word and additionally emits `amplify` tagged
// duplicates per word, inflating map and reduce output volume.
class HeavyWordCountMapper final : public engine::Mapper {
 public:
  explicit HeavyWordCountMapper(int amplify = 2);
  void map(const dfs::Record& record, engine::Emitter& out) override;

 private:
  int amplify_;
  std::string tag_buf_;  // reused "word#N" scratch across records
};

// Sums integer values per key (also usable as a combiner — summation is
// algebraic, which S3's sub-job execution requires).
class SumReducer final : public engine::Reducer {
 public:
  void reduce(std::string_view key,
              const std::vector<std::string_view>& values,
              engine::Emitter& out) override;
};

// Builds a complete JobSpec for a pattern-wordcount job over `input`.
[[nodiscard]] engine::JobSpec make_wordcount_job(JobId id, FileId input,
                                                 std::string prefix,
                                                 std::uint32_t reduce_tasks,
                                                 bool with_combiner = true);

[[nodiscard]] engine::JobSpec make_heavy_wordcount_job(
    JobId id, FileId input, int amplify, std::uint32_t reduce_tasks);

}  // namespace s3::workloads
