// Job arrival pattern generators (paper §III, Figure 1): dense streams,
// sparse grouped submissions, plus uniform and Poisson processes for
// sensitivity sweeps. All return sorted arrival times in seconds.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace s3::workloads {

// n jobs, each `gap` seconds after the previous (gap may be 0).
[[nodiscard]] std::vector<SimTime> dense_pattern(std::size_t n, SimTime gap);

// Groups of dense jobs (Figure 1(b)): group g starts at g * group_gap; jobs
// within a group are intra_gap apart. The paper's sparse pattern is
// {3, 3, 4} groups.
[[nodiscard]] std::vector<SimTime> sparse_groups(
    const std::vector<std::size_t>& group_sizes, SimTime group_gap,
    SimTime intra_gap);

// n jobs with uniform inter-arrival `gap`.
[[nodiscard]] std::vector<SimTime> uniform_pattern(std::size_t n, SimTime gap);

// n jobs with exponential inter-arrivals of the given mean (Poisson process).
[[nodiscard]] std::vector<SimTime> poisson_pattern(std::size_t n,
                                                   SimTime mean_gap, Rng& rng);

}  // namespace s3::workloads
