#include "workloads/suite.h"

#include "common/status.h"
#include "workloads/arrival.h"

namespace s3::workloads {

std::uint64_t PaperSetup::default_segment_blocks() const {
  // k = 8 segments over the wordcount file (near the ~10 the paper's dense
  // sub-job count implies), chosen so each segment is a whole number of
  // 40-slot waves — a partial final wave would idle most of the cluster at
  // every segment boundary. Scales with block size (same bytes per segment).
  return std::max<std::uint64_t>(1, wordcount_blocks / 8);
}

PaperSetup make_paper_setup(double block_mb) {
  S3_CHECK(block_mb > 0);
  PaperSetup setup;
  setup.topology = cluster::Topology::paper_cluster();
  setup.cost = sim::CostModelParams::paper(block_mb);

  // 160 GB (4 GB x 40 nodes) of text; 400 GB (10 GB x 40) of lineitem.
  setup.wordcount_blocks =
      static_cast<std::uint64_t>(160.0 * 1024.0 / block_mb);
  setup.lineitem_blocks =
      static_cast<std::uint64_t>(400.0 * 1024.0 / block_mb);

  // The sim never touches payload bytes, so files exist only in the catalog.
  setup.wordcount_file = FileId(0);
  setup.lineitem_file = FileId(1);
  setup.catalog.add(setup.wordcount_file, setup.wordcount_blocks);
  setup.catalog.add(setup.lineitem_file, setup.lineitem_blocks);
  return setup;
}

std::vector<sim::SimJob> make_sim_jobs(FileId file,
                                       const std::vector<SimTime>& arrivals,
                                       const sim::WorkloadCost& cost,
                                       const std::string& label_prefix) {
  std::vector<sim::SimJob> jobs;
  jobs.reserve(arrivals.size());
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    sim::SimJob job;
    job.id = JobId(i);
    job.file = file;
    job.arrival = arrivals[i];
    job.cost = cost;
    job.label = label_prefix + "-" + std::to_string(i);
    jobs.push_back(std::move(job));
  }
  return jobs;
}

std::vector<SimTime> paper_sparse_arrivals() {
  // Figure 1(b): 10 jobs in three groups of 3/3/4 dense jobs. The groups
  // are spaced closer than a whole-file job's duration (~280 s), so batched
  // schemes serialize while S3 admits each group within one segment — the
  // regime the paper's sparse experiment exercises.
  return sparse_groups({3, 3, 4}, /*group_gap=*/180.0, /*intra_gap=*/30.0);
}

std::vector<SimTime> paper_dense_arrivals() {
  // 10 jobs submitted nearly back-to-back.
  return dense_pattern(10, /*gap=*/3.0);
}

std::unique_ptr<sched::Scheduler> make_fifo(const sched::FileCatalog& catalog) {
  return std::make_unique<sched::FifoScheduler>(catalog);
}

std::unique_ptr<sched::Scheduler> make_mrs1(const sched::FileCatalog& catalog) {
  return std::make_unique<sched::MRShareScheduler>(catalog, sched::SingleBatch{},
                                                   "MRS1");
}

std::unique_ptr<sched::Scheduler> make_mrs2(const sched::FileCatalog& catalog) {
  return std::make_unique<sched::MRShareScheduler>(
      catalog, sched::FixedGroups{{6, 4}}, "MRS2");
}

std::unique_ptr<sched::Scheduler> make_mrs3(const sched::FileCatalog& catalog) {
  return std::make_unique<sched::MRShareScheduler>(
      catalog, sched::FixedGroups{{3, 3, 4}}, "MRS3");
}

std::unique_ptr<sched::Scheduler> make_s3(const sched::FileCatalog& catalog,
                                          const cluster::Topology& topology,
                                          std::uint64_t segment_blocks) {
  sched::S3Options options;
  options.wave_sizing = sched::WaveSizing::kFixedSegments;
  options.blocks_per_segment = segment_blocks;
  return std::make_unique<sched::S3Scheduler>(catalog, options, &topology);
}

}  // namespace s3::workloads
