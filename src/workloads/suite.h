// Experiment presets: the paper's cluster/file/arrival configurations wired
// together so tests, examples and every figure bench construct runs the same
// way. All sizes are the paper's (§V-A/B): 40 slaves in 3 racks, 160 GB
// wordcount input (2,560 x 64 MB blocks), 400 GB lineitem (6,400 blocks),
// 30 reduce tasks.
//
// Segment size note: §IV-B suggests blocks-per-segment = concurrent map
// slots (40), but the dense-pattern discussion (§V-D) reports only 13 merged
// sub-jobs for 10 overlapping jobs, implying k ≈ 10 segments, i.e. ~256
// blocks per segment. We default to 256 ("observed" calibration) and expose
// the knob for the ablation bench.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cluster/topology.h"
#include "sched/file_catalog.h"
#include "sched/fifo.h"
#include "sched/mrshare.h"
#include "sched/s3_scheduler.h"
#include "sim/sim_engine.h"

namespace s3::workloads {

struct PaperSetup {
  cluster::Topology topology;
  sched::FileCatalog catalog;
  FileId wordcount_file;   // 160 GB of text
  FileId lineitem_file;    // 400 GB of lineitem
  sim::CostModelParams cost;
  std::uint64_t wordcount_blocks = 0;
  std::uint64_t lineitem_blocks = 0;

  // Paper-observed S3 segment size (see note above).
  [[nodiscard]] std::uint64_t default_segment_blocks() const;
};

// block_mb ∈ {32, 64, 128} in the paper's experiments.
[[nodiscard]] PaperSetup make_paper_setup(double block_mb = 64.0);

// One SimJob per arrival, all reading `file` with the given workload class.
[[nodiscard]] std::vector<sim::SimJob> make_sim_jobs(
    FileId file, const std::vector<SimTime>& arrivals,
    const sim::WorkloadCost& cost, const std::string& label_prefix = "job");

// The paper's arrival patterns with its 10-job workload.
[[nodiscard]] std::vector<SimTime> paper_sparse_arrivals();
[[nodiscard]] std::vector<SimTime> paper_dense_arrivals();

// Scheduler factories for the five schemes of Figure 4.
[[nodiscard]] std::unique_ptr<sched::Scheduler> make_fifo(
    const sched::FileCatalog& catalog);
[[nodiscard]] std::unique_ptr<sched::Scheduler> make_mrs1(
    const sched::FileCatalog& catalog);
[[nodiscard]] std::unique_ptr<sched::Scheduler> make_mrs2(
    const sched::FileCatalog& catalog);
[[nodiscard]] std::unique_ptr<sched::Scheduler> make_mrs3(
    const sched::FileCatalog& catalog);
[[nodiscard]] std::unique_ptr<sched::Scheduler> make_s3(
    const sched::FileCatalog& catalog, const cluster::Topology& topology,
    std::uint64_t segment_blocks);

}  // namespace s3::workloads
