// Synthetic Gutenberg-like text corpus: a deterministic vocabulary with
// Zipf-distributed word frequencies, laid out as newline-delimited lines.
// Substitutes for the paper's 160 GB Project Gutenberg dataset — wordcount
// only cares about token statistics, and Zipf matches natural language well.
// Block payloads are generated independently from (seed, block index), so
// corpora are reproducible at any scale.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/types.h"
#include "dfs/block_store.h"
#include "dfs/dfs_namespace.h"
#include "dfs/placement.h"

namespace s3::workloads {

struct TextCorpusOptions {
  std::uint64_t seed = 42;
  std::size_t vocabulary_size = 5000;
  double zipf_exponent = 1.05;
  std::size_t min_word_len = 2;
  std::size_t max_word_len = 10;
  std::size_t words_per_line = 12;
};

class TextCorpusGenerator {
 public:
  explicit TextCorpusGenerator(TextCorpusOptions options = {});

  [[nodiscard]] const std::vector<std::string>& vocabulary() const {
    return vocabulary_;
  }

  // Generates one block's payload (about `bytes` long, cut at a line
  // boundary). Deterministic in (options.seed, block_index).
  [[nodiscard]] std::string generate_block(std::uint64_t block_index,
                                           ByteSize bytes) const;

  // Creates a DFS file of `num_blocks` blocks of `block_size` each, placing
  // replicas via `placement` and storing payloads in `store`.
  [[nodiscard]] StatusOr<FileId> generate_file(
      dfs::DfsNamespace& ns, dfs::BlockStore& store,
      dfs::PlacementPolicy& placement, const std::string& name,
      std::uint64_t num_blocks, ByteSize block_size,
      int replication = 1) const;

 private:
  TextCorpusOptions options_;
  std::vector<std::string> vocabulary_;
  ZipfSampler zipf_;
};

}  // namespace s3::workloads
