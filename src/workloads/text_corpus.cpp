#include "workloads/text_corpus.h"

#include <unordered_set>

namespace s3::workloads {

TextCorpusGenerator::TextCorpusGenerator(TextCorpusOptions options)
    : options_(options),
      zipf_(options.vocabulary_size, options.zipf_exponent) {
  S3_CHECK(options_.vocabulary_size > 0);
  S3_CHECK(options_.min_word_len >= 1);
  S3_CHECK(options_.max_word_len >= options_.min_word_len);
  S3_CHECK(options_.words_per_line > 0);

  // Deterministic vocabulary; rejects duplicates so word ranks are unique.
  Rng rng(options_.seed);
  std::unordered_set<std::string> seen;
  vocabulary_.reserve(options_.vocabulary_size);
  while (vocabulary_.size() < options_.vocabulary_size) {
    const std::size_t len = static_cast<std::size_t>(rng.uniform_int(
        static_cast<std::int64_t>(options_.min_word_len),
        static_cast<std::int64_t>(options_.max_word_len)));
    std::string word;
    word.reserve(len);
    for (std::size_t i = 0; i < len; ++i) {
      word.push_back(static_cast<char>('a' + rng.uniform_u64(26)));
    }
    if (seen.insert(word).second) vocabulary_.push_back(std::move(word));
  }
}

std::string TextCorpusGenerator::generate_block(std::uint64_t block_index,
                                                ByteSize bytes) const {
  S3_CHECK(bytes.count() > 0);
  // Independent stream per block: hash the seed with the block index.
  std::uint64_t sm = options_.seed ^ (block_index * 0x9e3779b97f4a7c15ULL + 1);
  Rng rng(splitmix64(sm));

  std::string out;
  out.reserve(bytes.count() + 128);
  while (out.size() < bytes.count()) {
    std::string line;
    for (std::size_t w = 0; w < options_.words_per_line; ++w) {
      if (w != 0) line.push_back(' ');
      line += vocabulary_[zipf_.sample(rng)];
    }
    line.push_back('\n');
    if (out.size() + line.size() > bytes.count() && !out.empty()) break;
    out += line;
  }
  return out;
}

StatusOr<FileId> TextCorpusGenerator::generate_file(
    dfs::DfsNamespace& ns, dfs::BlockStore& store,
    dfs::PlacementPolicy& placement, const std::string& name,
    std::uint64_t num_blocks, ByteSize block_size, int replication) const {
  if (num_blocks == 0) return Status::invalid_argument("need >= 1 block");
  auto file_or = ns.create_file(name, block_size);
  if (!file_or.is_ok()) return file_or.status();
  const FileId file = file_or.value();

  for (std::uint64_t b = 0; b < num_blocks; ++b) {
    std::string payload = generate_block(b, block_size);
    auto block_or = ns.append_block(file, ByteSize(payload.size()));
    if (!block_or.is_ok()) return block_or.status();
    const BlockId block = block_or.value();
    S3_RETURN_IF_ERROR(ns.set_replicas(block, placement.place(b, replication)));
    S3_RETURN_IF_ERROR(store.put(block, std::move(payload)));
  }
  return file;
}

}  // namespace s3::workloads
