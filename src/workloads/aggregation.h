// Aggregation queries — the paper's §V-G extension. S3 executes a job as a
// sequence of sub-jobs, each producing partial results; "for certain
// applications, in particular aggregation queries, it is possible for
// subsequent phases of sub-jobs to exploit and utilize the results generated
// from earlier phases". The engine supports this through algebraic reducers
// plus incremental merging (LocalEngineOptions::incremental_merge); this
// header supplies a concrete aggregation workload:
//
//   SELECT l_returnflag, AVG(l_extendedprice), COUNT(*)
//   FROM lineitem GROUP BY l_returnflag;
//
// AVG is not algebraic over plain averages, so the reducer carries the
// classic (sum, count) pair, which folds associatively across sub-jobs; the
// final average is extracted after the job completes.
#pragma once

#include <map>
#include <string>

#include "engine/job.h"
#include "engine/mapper.h"

namespace s3::workloads {

// Emits (l_returnflag, "price|1") per lineitem row.
class AvgPriceMapper final : public engine::Mapper {
 public:
  void map(const dfs::Record& record, engine::Emitter& out) override;

 private:
  std::string value_buf_;  // reused "price|1" scratch across records
};

// Folds "sum|count" pairs: reduce({(s1,c1),(s2,c2)}) = (s1+s2, c1+c2).
// Algebraic, so it serves as combiner, per-sub-job reducer, and the final
// cross-sub-job merge (paper §V-G's refined partial aggregation).
class PairSumReducer final : public engine::Reducer {
 public:
  void reduce(std::string_view key,
              const std::vector<std::string_view>& values,
              engine::Emitter& out) override;
};

// Parses one "sum|count" value into (sum, count).
[[nodiscard]] std::pair<double, std::uint64_t> parse_pair(
    std::string_view value);

struct Average {
  double sum = 0.0;
  std::uint64_t count = 0;
  [[nodiscard]] double value() const {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
};

// Extracts final averages from a completed job's (sum|count) output.
[[nodiscard]] std::map<std::string, Average> extract_averages(
    const engine::JobResult& result);

[[nodiscard]] engine::JobSpec make_avg_price_job(JobId id, FileId input,
                                                 std::uint32_t reduce_tasks);

}  // namespace s3::workloads
