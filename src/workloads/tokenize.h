// Vectorized tokenization for the text workloads. The corpus delimiter is
// exactly one byte — ' ' (0x20, see text_corpus.cpp) — so a window of input
// reduces to a space bitmask, and every word boundary in the window falls
// out of bit operations on that mask. Corpus words average ~6 bytes, so the
// wide paths compute each window's mask ONCE and walk all of its boundaries
// from the cached bits; a scan-per-boundary design would reload and
// recompare the same window ~4 times per 16 bytes. Three implementations
// share the semantics:
//
//   kScalar  byte-at-a-time loop (the original for_each_word; the oracle)
//   kSwar    8-byte windows via a uint64 load and an exact zero-byte
//            detector on v ^ 0x2020...: ~(((v & 0x7F7F..) + 0x7F7F..) | v
//            | 0x7F7F..) flags exactly the zero bytes
//   kSimd    16-byte windows via SSE2 _mm_cmpeq_epi8 + movemask
//
// kAuto (the default) picks the widest path compiled in. All three are
// proven byte-identical by the differential tests (tokenize_test.cpp),
// including end-to-end through all three schedulers. set_tokenize_mode
// exists for those tests and for benchmarking the paths against each other;
// production code never calls it.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <string_view>

#if defined(__SSE2__)
#include <emmintrin.h>
#define S3_TOKENIZE_HAVE_SSE2 1
#endif

namespace s3::workloads {

enum class TokenizeMode { kAuto, kScalar, kSwar, kSimd };

namespace detail {

inline std::atomic<TokenizeMode>& tokenize_mode_slot() {
  static std::atomic<TokenizeMode> mode{TokenizeMode::kAuto};
  return mode;
}

inline constexpr char kDelim = ' ';
inline constexpr std::uint64_t kDelimBroadcast = 0x2020202020202020ULL;
inline constexpr std::uint64_t kLowSeven = 0x7F7F7F7F7F7F7F7FULL;
inline constexpr std::uint64_t kHighBits = 0x8080808080808080ULL;

// Bitmask with bit 8b+7 set iff byte b of `word` is exactly zero, and no
// other bits set. Per byte, (x & 0x7F) + 0x7F carries into bit 7 iff the
// low seven bits are nonzero, and OR-ing x back in catches bit 7 itself;
// byte sums top out at 0xFE, so lanes never carry into each other. The
// textbook (x - 0x0101..) & ~x & 0x8080.. detector is NOT exact: its
// subtraction borrows across lanes, so the byte above a true zero can be
// flagged when it isn't zero (e.g. '!' ^ ' ' = 0x01 right after a space),
// which is a correctness bug for a boundary-walking tokenizer.
[[nodiscard]] inline std::uint64_t zero_byte_flags(std::uint64_t word) {
  return ~(((word & kLowSeven) + kLowSeven) | word | kLowSeven);
}

[[nodiscard]] inline std::uint64_t load_u64(const char* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline constexpr std::size_t kNoWord = ~std::size_t{0};

// The scalar word loop, resumable: `start` carries an in-progress word
// (kNoWord if between words) so the wide paths can hand their sub-window
// tails here without re-scanning. The trailing word is emitted on exit.
template <typename Fn>
void tokenize_scalar_from(std::string_view line, std::size_t i,
                          std::size_t start, Fn&& fn) {
  const std::size_t n = line.size();
  for (; i < n; ++i) {
    if (start == kNoWord) {
      if (line[i] != kDelim) start = i;
    } else if (line[i] == kDelim) {
      fn(line.substr(start, i - start));
      start = kNoWord;
    }
  }
  if (start != kNoWord) fn(line.substr(start));
}

// SWAR tokenizer: one load + zero-byte detect per 8-byte window, then all
// word boundaries inside the window are walked with bit operations on the
// cached flag word — the window is never re-read, unlike a scan-per-word
// loop which reloads it for every boundary. `flags` has bit 8b+7 set iff
// window byte b is a space; masking with (~0 << 8*pos) discards consumed
// bytes and ctz>>3 turns the lowest surviving flag back into a byte index.
template <typename Fn>
void tokenize_swar(std::string_view line, Fn&& fn) {
  const char* d = line.data();
  const std::size_t n = line.size();
  std::size_t base = 0;
  std::size_t start = kNoWord;
  while (base + 8 <= n) {
    const std::uint64_t space =
        zero_byte_flags(load_u64(d + base) ^ kDelimBroadcast);
    std::size_t pos = 0;
    while (pos < 8) {
      const std::uint64_t live = ~std::uint64_t{0} << (8 * pos);
      if (start == kNoWord) {
        const std::uint64_t word_bits = ~space & kHighBits & live;
        if (word_bits == 0) break;
        start = base + (static_cast<std::size_t>(
                            __builtin_ctzll(word_bits)) >> 3);
        pos = start - base;
      } else {
        const std::uint64_t space_bits = space & live;
        if (space_bits == 0) break;
        const std::size_t end =
            base +
            (static_cast<std::size_t>(__builtin_ctzll(space_bits)) >> 3);
        fn(line.substr(start, end - start));
        start = kNoWord;
        pos = end - base + 1;
      }
    }
    base += 8;
  }
  tokenize_scalar_from(line, base, start, fn);
}

#if defined(S3_TOKENIZE_HAVE_SSE2)
// SSE2 tokenizer: same single-pass structure as tokenize_swar with a
// 16-byte window and a compact movemask (bit b = byte b is a space).
template <typename Fn>
void tokenize_simd(std::string_view line, Fn&& fn) {
  const char* d = line.data();
  const std::size_t n = line.size();
  const __m128i delim = _mm_set1_epi8(kDelim);
  std::size_t base = 0;
  std::size_t start = kNoWord;
  while (base + 16 <= n) {
    const __m128i chunk =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(d + base));
    const unsigned space =
        static_cast<unsigned>(_mm_movemask_epi8(_mm_cmpeq_epi8(chunk, delim)));
    std::size_t pos = 0;
    while (pos < 16) {
      const unsigned live = ~0u << pos;
      if (start == kNoWord) {
        const unsigned word_bits = ~space & 0xFFFFu & live;
        if (word_bits == 0) break;
        pos = static_cast<std::size_t>(__builtin_ctz(word_bits));
        start = base + pos;
      } else {
        const unsigned space_bits = space & live;
        if (space_bits == 0) break;
        const std::size_t end =
            base + static_cast<std::size_t>(__builtin_ctz(space_bits));
        fn(line.substr(start, end - start));
        start = kNoWord;
        pos = end - base + 1;
      }
    }
    base += 16;
  }
  tokenize_scalar_from(line, base, start, fn);
}
#endif

}  // namespace detail

// Process-global override, for tests and benchmarks only.
inline void set_tokenize_mode(TokenizeMode mode) {
  detail::tokenize_mode_slot().store(mode, std::memory_order_relaxed);
}
[[nodiscard]] inline TokenizeMode tokenize_mode() {
  return detail::tokenize_mode_slot().load(std::memory_order_relaxed);
}

// The widest path the current mode resolves to on this build.
[[nodiscard]] inline TokenizeMode effective_tokenize_mode() {
  const TokenizeMode mode = tokenize_mode();
  if (mode != TokenizeMode::kAuto) return mode;
#if defined(S3_TOKENIZE_HAVE_SSE2)
  return TokenizeMode::kSimd;
#else
  return TokenizeMode::kSwar;
#endif
}

// Iterates the space-separated words of a record without copying: fn is
// called with a view into `line` for every maximal run of non-space bytes.
// Exactly equivalent to the scalar loop for every input, in every mode.
template <typename Fn>
void for_each_word(std::string_view line, Fn&& fn) {
  switch (tokenize_mode()) {
    case TokenizeMode::kScalar:
      detail::tokenize_scalar_from(line, 0, detail::kNoWord, fn);
      return;
    case TokenizeMode::kSwar:
      detail::tokenize_swar(line, fn);
      return;
    case TokenizeMode::kSimd:
    case TokenizeMode::kAuto:
#if defined(S3_TOKENIZE_HAVE_SSE2)
      detail::tokenize_simd(line, fn);
#else
      detail::tokenize_swar(line, fn);
#endif
      return;
  }
}

}  // namespace s3::workloads
