#include "workloads/arrival.h"

#include "common/status.h"

namespace s3::workloads {

std::vector<SimTime> dense_pattern(std::size_t n, SimTime gap) {
  S3_CHECK(n > 0);
  S3_CHECK(gap >= 0.0);
  std::vector<SimTime> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = gap * static_cast<double>(i);
  return out;
}

std::vector<SimTime> sparse_groups(const std::vector<std::size_t>& group_sizes,
                                   SimTime group_gap, SimTime intra_gap) {
  S3_CHECK(!group_sizes.empty());
  S3_CHECK(group_gap >= 0.0 && intra_gap >= 0.0);
  std::vector<SimTime> out;
  for (std::size_t g = 0; g < group_sizes.size(); ++g) {
    S3_CHECK(group_sizes[g] > 0);
    const SimTime start = group_gap * static_cast<double>(g);
    for (std::size_t j = 0; j < group_sizes[g]; ++j) {
      out.push_back(start + intra_gap * static_cast<double>(j));
    }
  }
  return out;
}

std::vector<SimTime> uniform_pattern(std::size_t n, SimTime gap) {
  return dense_pattern(n, gap);
}

std::vector<SimTime> poisson_pattern(std::size_t n, SimTime mean_gap,
                                     Rng& rng) {
  S3_CHECK(n > 0);
  S3_CHECK(mean_gap > 0.0);
  std::vector<SimTime> out(n);
  SimTime t = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = t;
    t += rng.exponential(mean_gap);
  }
  return out;
}

}  // namespace s3::workloads
