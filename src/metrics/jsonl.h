// Machine-readable run artifacts: JSON-lines export of per-job timelines and
// summaries (one JSON object per line — greppable, streamable, and trivially
// loadable from pandas / jq). The writer is a minimal hand-rolled JSON
// emitter: only the flat object shapes used here, strings escaped.
#pragma once

#include <string>
#include <vector>

#include "metrics/metrics.h"

namespace s3::metrics {

// Minimal JSON object builder for flat records.
class JsonObject {
 public:
  JsonObject& field(const std::string& key, const std::string& value);
  JsonObject& field(const std::string& key, double value);
  JsonObject& field(const std::string& key, std::uint64_t value);
  JsonObject& field(const std::string& key, bool value);

  // Renders "{...}".
  [[nodiscard]] std::string str() const;

  [[nodiscard]] static std::string escape(const std::string& raw);

 private:
  std::string body_;
};

// One line per job: {"job":N,"submitted":..,"started":..,"completed":..,
// "response":..,"waiting":..}
[[nodiscard]] std::string jobs_to_jsonl(const std::vector<JobRecord>& jobs);

// Single line for a run summary: {"jobs":N,"tet":..,"art":..,...}
[[nodiscard]] std::string summary_to_json(const MetricsSummary& summary,
                                          const std::string& label);

}  // namespace s3::metrics
