#include "metrics/metrics.h"

#include <algorithm>

#include "common/status.h"
#include "common/strings.h"

namespace s3::metrics {

void JobTimeline::on_submitted(JobId job, SimTime t) {
  S3_CHECK_MSG(records_.count(job) == 0, "job submitted twice: " << job);
  JobRecord r;
  r.id = job;
  r.submitted = t;
  records_.emplace(job, r);
}

void JobTimeline::on_first_started(JobId job, SimTime t) {
  const auto it = records_.find(job);
  S3_CHECK_MSG(it != records_.end(), "start before submission: " << job);
  if (it->second.first_started == kTimeNever) {
    S3_CHECK(t >= it->second.submitted);
    it->second.first_started = t;
  }
}

void JobTimeline::on_completed(JobId job, SimTime t) {
  const auto it = records_.find(job);
  S3_CHECK_MSG(it != records_.end(), "completion before submission: " << job);
  S3_CHECK_MSG(it->second.completed == kTimeNever,
               "job completed twice: " << job);
  S3_CHECK_MSG(it->second.failed_at == kTimeNever,
               "failed job cannot complete: " << job);
  S3_CHECK(t >= it->second.submitted);
  it->second.completed = t;
  if (it->second.first_started == kTimeNever) it->second.first_started = t;
}

void JobTimeline::on_failed(JobId job, SimTime t) {
  const auto it = records_.find(job);
  S3_CHECK_MSG(it != records_.end(), "failure before submission: " << job);
  S3_CHECK_MSG(it->second.completed == kTimeNever,
               "completed job cannot fail: " << job);
  S3_CHECK_MSG(it->second.failed_at == kTimeNever,
               "job failed twice: " << job);
  S3_CHECK(t >= it->second.submitted);
  it->second.failed_at = t;
}

const JobRecord& JobTimeline::record(JobId job) const {
  const auto it = records_.find(job);
  S3_CHECK_MSG(it != records_.end(), "unknown job " << job);
  return it->second;
}

std::vector<JobRecord> JobTimeline::records() const {
  std::vector<JobRecord> out;
  out.reserve(records_.size());
  for (const auto& [id, r] : records_) out.push_back(r);
  std::sort(out.begin(), out.end(), [](const JobRecord& a, const JobRecord& b) {
    if (a.submitted != b.submitted) return a.submitted < b.submitted;
    return a.id < b.id;
  });
  return out;
}

bool JobTimeline::all_done() const {
  for (const auto& [id, r] : records_) {
    if (!r.done()) return false;
  }
  return true;
}

MetricsSummary summarize(const JobTimeline& timeline) {
  S3_CHECK_MSG(timeline.all_done(), "summarize() requires all jobs complete");
  MetricsSummary s;
  const auto records = timeline.records();
  if (records.empty()) return s;

  SimTime first_submit = records.front().submitted;
  SimTime last_complete = 0.0;
  SampleSet responses;
  OnlineStats waits;
  for (const auto& r : records) {
    if (r.failed()) {
      // Quarantined jobs never completed: they terminate the run but carry
      // no response time.
      ++s.failed_jobs;
      continue;
    }
    ++s.num_jobs;
    first_submit = std::min(first_submit, r.submitted);
    last_complete = std::max(last_complete, r.completed);
    responses.add(r.response_time());
    const std::optional<SimTime> wait = r.waiting_time();
    S3_CHECK_MSG(wait.has_value(),
                 "completed job never started: " << r.id);
    waits.add(*wait);
  }
  if (s.num_jobs == 0) return s;
  s.tet = last_complete - first_submit;
  s.art = responses.mean();
  s.mean_waiting = waits.mean();
  s.max_response = responses.max();
  s.p95_response = responses.percentile(95.0);
  return s;
}

std::string MetricsSummary::to_string() const {
  std::string out;
  out += "jobs=" + std::to_string(num_jobs);
  if (failed_jobs > 0) out += " failed=" + std::to_string(failed_jobs);
  out += " TET=" + format_double(tet, 1) + "s";
  out += " ART=" + format_double(art, 1) + "s";
  out += " wait=" + format_double(mean_waiting, 1) + "s";
  return out;
}

}  // namespace s3::metrics
