// Report writers: a generic fixed-width ASCII table plus the paper-style
// scheme-comparison table that prints absolute TET/ART and values normalized
// to a baseline scheme (the figures normalize to S3 = 1.0).
#pragma once

#include <string>
#include <vector>

#include "metrics/metrics.h"

namespace s3::metrics {

class TableWriter {
 public:
  explicit TableWriter(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  [[nodiscard]] std::string render() const;
  [[nodiscard]] std::string render_csv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

struct SchemeResult {
  std::string scheme;
  MetricsSummary summary;
};

class ComparisonTable {
 public:
  void add(std::string scheme, MetricsSummary summary);

  // Renders absolute seconds plus TET/ART normalized to `baseline` = 1.00
  // (must have been added). Matches the presentation of Figure 4.
  [[nodiscard]] std::string render(const std::string& baseline) const;
  [[nodiscard]] std::string render_csv(const std::string& baseline) const;

  [[nodiscard]] const std::vector<SchemeResult>& results() const {
    return results_;
  }
  [[nodiscard]] const MetricsSummary& summary_for(
      const std::string& scheme) const;

 private:
  std::vector<SchemeResult> results_;
};

}  // namespace s3::metrics
