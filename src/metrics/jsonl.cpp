#include "metrics/jsonl.h"

#include <cstdio>

namespace s3::metrics {

std::string JsonObject::escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size() + 2);
  for (const char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

JsonObject& JsonObject::field(const std::string& key,
                              const std::string& value) {
  if (!body_.empty()) body_ += ',';
  body_ += '"' + escape(key) + "\":\"" + escape(value) + '"';
  return *this;
}

JsonObject& JsonObject::field(const std::string& key, double value) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  if (!body_.empty()) body_ += ',';
  body_ += '"' + escape(key) + "\":" + buf;
  return *this;
}

JsonObject& JsonObject::field(const std::string& key, std::uint64_t value) {
  if (!body_.empty()) body_ += ',';
  body_ += '"' + escape(key) + "\":" + std::to_string(value);
  return *this;
}

JsonObject& JsonObject::field(const std::string& key, bool value) {
  if (!body_.empty()) body_ += ',';
  body_ += '"' + escape(key) + (value ? "\":true" : "\":false");
  return *this;
}

std::string JsonObject::str() const { return '{' + body_ + '}'; }

std::string jobs_to_jsonl(const std::vector<JobRecord>& jobs) {
  std::string out;
  for (const auto& job : jobs) {
    JsonObject record;
    record.field("job", job.id.value())
        .field("submitted", job.submitted)
        .field("started", job.first_started)
        .field("completed", job.completed)
        .field("response", job.response_time())
        .field("waiting", job.waiting_time().value_or(-1.0));
    out += record.str();
    out += '\n';
  }
  return out;
}

std::string summary_to_json(const MetricsSummary& summary,
                            const std::string& label) {
  JsonObject record;
  record.field("label", label)
      .field("jobs", static_cast<std::uint64_t>(summary.num_jobs))
      .field("tet", summary.tet)
      .field("art", summary.art)
      .field("mean_waiting", summary.mean_waiting)
      .field("max_response", summary.max_response)
      .field("p95_response", summary.p95_response);
  return record.str();
}

}  // namespace s3::metrics
