// The paper's two performance metrics (§III-B):
//   TET — total execution time: first job's submission to last completion.
//   ART — average response time: mean of (completion - submission) per job.
// JobTimeline records the raw per-job events; MetricsSummary derives the
// aggregate numbers plus waiting-time statistics.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/stats.h"
#include "common/types.h"

namespace s3::metrics {

struct JobRecord {
  JobId id;
  SimTime submitted = 0.0;
  // First time any task of the job started processing (start of its first
  // batch); measures waiting time.
  SimTime first_started = kTimeNever;
  SimTime completed = kTimeNever;
  // Set when the job failed permanently (poison quarantine) instead of
  // completing; such a job is "done" for termination purposes but excluded
  // from the response-time statistics.
  SimTime failed_at = kTimeNever;

  [[nodiscard]] bool failed() const { return failed_at != kTimeNever; }
  [[nodiscard]] bool done() const {
    return completed != kTimeNever || failed();
  }
  [[nodiscard]] bool started() const { return first_started != kTimeNever; }
  [[nodiscard]] SimTime response_time() const { return completed - submitted; }
  // Empty until the job's first task starts (never kTimeNever - submitted
  // garbage); always set for a completed job.
  [[nodiscard]] std::optional<SimTime> waiting_time() const {
    if (!started()) return std::nullopt;
    return first_started - submitted;
  }
};

class JobTimeline {
 public:
  void on_submitted(JobId job, SimTime t);
  void on_first_started(JobId job, SimTime t);  // idempotent
  void on_completed(JobId job, SimTime t);
  void on_failed(JobId job, SimTime t);

  [[nodiscard]] const JobRecord& record(JobId job) const;
  [[nodiscard]] std::vector<JobRecord> records() const;  // by submission time
  [[nodiscard]] std::size_t num_jobs() const { return records_.size(); }
  [[nodiscard]] bool all_done() const;

 private:
  std::unordered_map<JobId, JobRecord> records_;
};

struct MetricsSummary {
  std::size_t num_jobs = 0;     // jobs that completed successfully
  std::size_t failed_jobs = 0;  // quarantined/failed jobs (excluded above)
  double tet = 0.0;  // total execution time
  double art = 0.0;  // average response time
  double mean_waiting = 0.0;
  double max_response = 0.0;
  double p95_response = 0.0;

  [[nodiscard]] std::string to_string() const;
};

// Computes the summary; requires every job to be complete.
[[nodiscard]] MetricsSummary summarize(const JobTimeline& timeline);

}  // namespace s3::metrics
