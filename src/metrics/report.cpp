#include "metrics/report.h"

#include <algorithm>

#include "common/status.h"
#include "common/strings.h"

namespace s3::metrics {

TableWriter::TableWriter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  S3_CHECK(!headers_.empty());
}

void TableWriter::add_row(std::vector<std::string> cells) {
  S3_CHECK_MSG(cells.size() == headers_.size(),
               "row has " << cells.size() << " cells, expected "
                          << headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TableWriter::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  std::string out;
  const auto rule = [&] {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      out += '+';
      out += std::string(widths[c] + 2, '-');
    }
    out += "+\n";
  };
  const auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out += "| " + pad_right(cells[c], widths[c]) + ' ';
    }
    out += "|\n";
  };
  rule();
  line(headers_);
  rule();
  for (const auto& row : rows_) line(row);
  rule();
  return out;
}

std::string TableWriter::render_csv() const {
  std::string out = join(headers_, ",") + "\n";
  for (const auto& row : rows_) out += join(row, ",") + "\n";
  return out;
}

void ComparisonTable::add(std::string scheme, MetricsSummary summary) {
  results_.push_back(SchemeResult{std::move(scheme), summary});
}

const MetricsSummary& ComparisonTable::summary_for(
    const std::string& scheme) const {
  for (const auto& r : results_) {
    if (r.scheme == scheme) return r.summary;
  }
  S3_CHECK_MSG(false, "no result for scheme '" << scheme << "'");
  return results_.front().summary;  // unreachable
}

std::string ComparisonTable::render(const std::string& baseline) const {
  const MetricsSummary& base = summary_for(baseline);
  TableWriter table({"scheme", "TET (s)", "ART (s)", "TET/" + baseline,
                     "ART/" + baseline, "mean wait (s)"});
  for (const auto& r : results_) {
    table.add_row({r.scheme, format_double(r.summary.tet, 1),
                   format_double(r.summary.art, 1),
                   format_double(r.summary.tet / base.tet, 2),
                   format_double(r.summary.art / base.art, 2),
                   format_double(r.summary.mean_waiting, 1)});
  }
  return table.render();
}

std::string ComparisonTable::render_csv(const std::string& baseline) const {
  const MetricsSummary& base = summary_for(baseline);
  TableWriter table({"scheme", "tet_s", "art_s", "tet_norm", "art_norm",
                     "mean_wait_s"});
  for (const auto& r : results_) {
    table.add_row({r.scheme, format_double(r.summary.tet, 3),
                   format_double(r.summary.art, 3),
                   format_double(r.summary.tet / base.tet, 4),
                   format_double(r.summary.art / base.art, 4),
                   format_double(r.summary.mean_waiting, 3)});
  }
  return table.render_csv();
}

}  // namespace s3::metrics
