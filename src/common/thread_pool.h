// Fixed-size thread pool with a shared blocking queue. Models the cluster's
// map/reduce slots in the real execution engine: one worker thread per slot.
// Tasks are type-erased std::function<void()>; submit() returns immediately
// and wait_idle() blocks until every submitted task has finished.
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/blocking_queue.h"

namespace s3 {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task; returns false if the pool is shutting down.
  bool submit(std::function<void()> task);

  // Blocks until the queue is empty AND no worker is executing a task.
  void wait_idle();

  // Stops accepting work, drains the queue, joins all workers. Called by the
  // destructor if not called explicitly.
  void shutdown();

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

 private:
  void worker_loop();

  BlockingQueue<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::mutex idle_mu_;
  std::condition_variable idle_cv_;
  std::size_t pending_ = 0;  // submitted but not yet finished
  bool shutdown_ = false;
};

}  // namespace s3
