// Fixed-size thread pool with a shared blocking queue. Models the cluster's
// map/reduce slots in the real execution engine: one worker thread per slot.
// Tasks are type-erased std::function<void()>; submit() returns immediately
// and wait_idle() blocks until every submitted task has finished.
//
// Exception contract: a task that throws does not kill the worker thread.
// The first exception is captured and rethrown from the next wait_idle()
// call (later ones are dropped), so engine code that waits for a wave
// observes the failure on its own thread. Lock discipline is machine-checked
// via common/thread_annotations.h.
#pragma once

#include <condition_variable>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "common/blocking_queue.h"
#include "common/thread_annotations.h"

namespace s3 {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task; returns false if the pool is shutting down — the task
  // is dropped, so callers must observe the result (a wave that ignores a
  // rejected submit under-counts its pending work and commits a short wave).
  [[nodiscard]] bool submit(std::function<void()> task) S3_EXCLUDES(idle_mu_);

  // Blocks until the queue is empty AND no worker is executing a task.
  // Rethrows the first exception any task threw since the last wait_idle().
  void wait_idle() S3_EXCLUDES(idle_mu_);

  // Stops accepting work, drains the queue, joins all workers. Called by the
  // destructor if not called explicitly. Exceptions captured from tasks that
  // ran during shutdown are discarded.
  void shutdown() S3_EXCLUDES(idle_mu_);

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

 private:
  void worker_loop() S3_EXCLUDES(idle_mu_);

  BlockingQueue<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  mutable AnnotatedMutex idle_mu_{LockRank::kPoolCoordination};
  std::condition_variable idle_cv_;
  // submitted but not yet finished
  std::size_t pending_ S3_GUARDED_BY(idle_mu_) = 0;
  bool shutdown_ S3_GUARDED_BY(idle_mu_) = false;
  // first uncaught task exception since the last wait_idle()
  std::exception_ptr first_error_ S3_GUARDED_BY(idle_mu_);
};

}  // namespace s3
