// Tiny leveled logger. Thread-safe (one mutex around the sink), cheap when a
// level is disabled (the stream expression is not evaluated).
#pragma once

#include <sstream>
#include <string>

#include "common/thread_annotations.h"

namespace s3 {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level);
  [[nodiscard]] LogLevel level() const;
  [[nodiscard]] bool enabled(LogLevel level) const;

  // Writes one formatted line: "[LEVEL] component: message".
  void write(LogLevel level, const std::string& component,
             const std::string& message);

 private:
  Logger() = default;

  mutable AnnotatedMutex mu_{LockRank::kLogging};
  LogLevel level_ S3_GUARDED_BY(mu_) = LogLevel::kWarn;
};

[[nodiscard]] const char* log_level_name(LogLevel level);

namespace internal {
// Helper that assembles the stream expression and forwards it on destruction.
class LogLine {
 public:
  LogLine(LogLevel level, const char* component)
      : level_(level), component_(component) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { Logger::instance().write(level_, component_, os_.str()); }

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream os_;
};
}  // namespace internal

}  // namespace s3

// Usage: S3_LOG(kInfo, "sched") << "launching batch " << id;
#define S3_LOG(level, component)                                    \
  if (!::s3::Logger::instance().enabled(::s3::LogLevel::level)) { \
  } else                                                            \
    ::s3::internal::LogLine(::s3::LogLevel::level, component)
