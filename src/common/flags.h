// Minimal command-line flag parser for the benchmark harnesses and examples.
// Supports --name=value and --name value forms plus boolean switches.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace s3 {

class Flags {
 public:
  // Parses argv; unrecognized positional arguments are kept in positional().
  static Flags parse(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::string get_string(const std::string& name,
                                       const std::string& def = "") const;
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t def = 0) const;
  [[nodiscard]] double get_double(const std::string& name,
                                  double def = 0.0) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool def = false) const;

  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }
  [[nodiscard]] const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace s3
