// Runtime contracts for scheduler invariants.
//
// Three tiers, mirroring how expensive the check is relative to what it
// protects (DESIGN.md §10 maps each adopted contract to the paper invariant
// it guards; tools/s3lint enforces the same invariants statically):
//
//  * S3_CHECK / S3_CHECK_MSG — always on, in every build type. Guards
//    invariants that, if broken, would silently corrupt an experiment
//    (Algorithm 1 batch accounting, shuffle registration ordering).
//  * S3_DCHECK / S3_DCHECK_MSG — debug-only (compiled out in Release).
//    Guards invariants that are cheap to state but sit on hot paths, e.g.
//    circular-cursor range checks on every wave.
//  * S3_POSTCONDITION — debug-only, evaluated at scope exit. States what a
//    mutation must have established (e.g. "the cursor advanced by exactly
//    one wave, modulo the file size") next to the code that establishes it.
//
// Debug checks are controlled by S3_DCHECKS_ENABLED. The build defines it
// to 1 for every CMAKE_BUILD_TYPE except Release (so the default
// RelWithDebInfo tier-1 build and all sanitizer builds run the contracts);
// without a build-system definition it follows NDEBUG.
#pragma once

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>

#ifndef S3_DCHECKS_ENABLED
#ifdef NDEBUG
#define S3_DCHECKS_ENABLED 0
#else
#define S3_DCHECKS_ENABLED 1
#endif
#endif

namespace s3::internal {

// Last-chance observer invoked with the formatted fatal message right before
// the process aborts. obs/crash_dump installs one so the always-on flight
// record survives the abort as an s3-crash-*.txt black box; common/ itself
// never depends on obs/ — the coupling is this one function pointer. The
// hook must not throw and must tolerate being the crashing thread (it runs
// exactly once: re-entrant fatals skip straight to abort).
using FatalHook = void (*)(const char* message);
void set_fatal_hook(FatalHook hook);

// The single sanctioned fatal exit for src/: prints nothing itself (callers
// have already written their diagnostic to stderr), invokes the fatal hook
// with `message`, then aborts. The s3lint rule `raw-abort` keeps direct
// abort()/exit() out of src/ outside common/ so no fatal path can bypass
// the crash sink.
[[noreturn]] void fatal_abort(const char* message);

[[noreturn]] void check_failed(const char* expr, const char* file, int line,
                               const std::string& extra);

// Runs a check at scope exit; the vehicle behind S3_POSTCONDITION. The
// lambda captures by reference, so it observes the function's final state.
template <typename F>
class PostconditionGuard {
 public:
  explicit PostconditionGuard(F f) : f_(std::move(f)) {}
  ~PostconditionGuard() { f_(); }

  PostconditionGuard(const PostconditionGuard&) = delete;
  PostconditionGuard& operator=(const PostconditionGuard&) = delete;

 private:
  F f_;
};

}  // namespace s3::internal

// Invariant checks: always on (these guard scheduler invariants that, if
// broken, would silently corrupt an experiment).
#define S3_CHECK(expr)                                             \
  do {                                                             \
    if (!(expr)) {                                                 \
      ::s3::internal::check_failed(#expr, __FILE__, __LINE__, ""); \
    }                                                              \
  } while (false)

#define S3_CHECK_MSG(expr, msg)                               \
  do {                                                        \
    if (!(expr)) {                                            \
      std::ostringstream s3_check_os;                         \
      s3_check_os << msg; /* NOLINT */                        \
      ::s3::internal::check_failed(#expr, __FILE__, __LINE__, \
                                   s3_check_os.str());        \
    }                                                         \
  } while (false)

// Debug-only variants: same semantics as S3_CHECK when S3_DCHECKS_ENABLED,
// otherwise the condition is type-checked but never evaluated.
#if S3_DCHECKS_ENABLED
#define S3_DCHECK(expr) S3_CHECK(expr)
#define S3_DCHECK_MSG(expr, msg) S3_CHECK_MSG(expr, msg)
#else
#define S3_DCHECK(expr)            \
  do {                             \
    if (false) {                   \
      static_cast<void>((expr));   \
    }                              \
  } while (false)
#define S3_DCHECK_MSG(expr, msg)   \
  do {                             \
    if (false) {                   \
      static_cast<void>((expr));   \
    }                              \
  } while (false)
#endif

#define S3_INTERNAL_CAT2(a, b) a##b
#define S3_INTERNAL_CAT(a, b) S3_INTERNAL_CAT2(a, b)

// Declares a condition that must hold when the enclosing scope exits, no
// matter which return path is taken. Captures by reference. Debug-only.
#if S3_DCHECKS_ENABLED
#define S3_POSTCONDITION(...)                                             \
  ::s3::internal::PostconditionGuard S3_INTERNAL_CAT(s3_postcondition_,   \
                                                     __COUNTER__)([&]() { \
    S3_DCHECK_MSG((__VA_ARGS__), "postcondition violated");               \
  })
#else
#define S3_POSTCONDITION(...)          \
  do {                                 \
    if (false) {                       \
      static_cast<void>((__VA_ARGS__)); \
    }                                  \
  } while (false)
#endif

#define S3_RETURN_IF_ERROR(expr)                      \
  do {                                                \
    ::s3::Status s3_status_tmp = (expr);              \
    if (!s3_status_tmp.is_ok()) return s3_status_tmp; \
  } while (false)
