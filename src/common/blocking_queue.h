// Unbounded MPMC blocking queue used by the thread pool and the real engine's
// task dispatch. close() wakes all waiters; pop() returns nullopt once the
// queue is closed and drained.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace s3 {

template <typename T>
class BlockingQueue {
 public:
  BlockingQueue() = default;
  BlockingQueue(const BlockingQueue&) = delete;
  BlockingQueue& operator=(const BlockingQueue&) = delete;

  // Returns false if the queue is already closed (item is dropped).
  bool push(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  // Blocks until an item is available or the queue is closed and empty.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  // Non-blocking pop.
  std::optional<T> try_pop() {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace s3
