// MPMC blocking queue used by the thread pool, the real engine's task
// dispatch, and the submission service's admission pipeline. close() wakes
// all waiters; pop() returns nullopt once the queue is closed and drained.
//
// Two modes:
//   * unbounded (default ctor) — push() always succeeds while open; this is
//     the thread-pool task queue behavior.
//   * bounded (capacity ctor) — the queue holds at most `capacity` items.
//     push() blocks until space frees, try_push() fails fast, and
//     try_push_for() waits up to a deadline. Bounded mode is how service
//     queues exert backpressure instead of growing without limit.
//
// All state is guarded by one mutex; the locking discipline is
// machine-checked by Clang Thread Safety Analysis (see
// common/thread_annotations.h). The mutex rank is configurable because the
// queue appears at two layers of the hierarchy (pool task queues vs the
// service admission pipeline).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <limits>
#include <optional>
#include <utility>

#include "common/thread_annotations.h"

namespace s3 {

template <typename T>
class BlockingQueue {
 public:
  // Unbounded queue (thread-pool task dispatch).
  BlockingQueue() = default;
  // Bounded queue: at most `capacity` items (0 means unbounded). The rank
  // defaults to the pool-queue slot; pass another rank when the queue lives
  // at a different layer of the lock hierarchy.
  explicit BlockingQueue(std::size_t capacity,
                         LockRank rank = LockRank::kPoolQueue)
      : mu_(rank),
        capacity_(capacity == 0 ? std::numeric_limits<std::size_t>::max()
                                : capacity) {}
  BlockingQueue(const BlockingQueue&) = delete;
  BlockingQueue& operator=(const BlockingQueue&) = delete;

  // Blocks while the queue is full. Returns false if the queue is closed
  // before space frees (item is dropped).
  bool push(T item) S3_EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      while (!closed_ && items_.size() >= capacity_) lock.wait(not_full_cv_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  // Non-blocking push: fails fast when the queue is closed or full. This is
  // the backpressure edge — callers translate `false` into a typed
  // retry/shed decision instead of waiting.
  bool try_push(T item) S3_EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  // Timed push: waits up to `timeout` for space, then gives up. Returns
  // false on close or timeout.
  template <typename Rep, typename Period>
  bool try_push_for(T item, const std::chrono::duration<Rep, Period>& timeout)
      S3_EXCLUDES(mu_) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    {
      MutexLock lock(mu_);
      while (!closed_ && items_.size() >= capacity_) {
        const auto now = std::chrono::steady_clock::now();
        if (now >= deadline) return false;
        lock.wait_for(not_full_cv_, deadline - now);
      }
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  // Blocks until an item is available or the queue is closed and empty.
  std::optional<T> pop() S3_EXCLUDES(mu_) {
    std::optional<T> item;
    {
      MutexLock lock(mu_);
      while (!closed_ && items_.empty()) lock.wait(cv_);
      if (items_.empty()) return std::nullopt;
      item = std::move(items_.front());
      items_.pop_front();
    }
    not_full_cv_.notify_one();
    return item;
  }

  // Non-blocking pop.
  std::optional<T> try_pop() S3_EXCLUDES(mu_) {
    std::optional<T> item;
    {
      MutexLock lock(mu_);
      if (items_.empty()) return std::nullopt;
      item = std::move(items_.front());
      items_.pop_front();
    }
    not_full_cv_.notify_one();
    return item;
  }

  void close() S3_EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
    not_full_cv_.notify_all();
  }

  [[nodiscard]] bool closed() const S3_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const S3_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return items_.size();
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  mutable AnnotatedMutex mu_{LockRank::kPoolQueue};
  std::condition_variable cv_;           // not-empty
  std::condition_variable not_full_cv_;  // space freed (bounded mode)
  std::deque<T> items_ S3_GUARDED_BY(mu_);
  const std::size_t capacity_ = std::numeric_limits<std::size_t>::max();
  bool closed_ S3_GUARDED_BY(mu_) = false;
};

}  // namespace s3
