// Unbounded MPMC blocking queue used by the thread pool and the real engine's
// task dispatch. close() wakes all waiters; pop() returns nullopt once the
// queue is closed and drained. All state is guarded by one mutex; the locking
// discipline is machine-checked by Clang Thread Safety Analysis (see
// common/thread_annotations.h).
#pragma once

#include <condition_variable>
#include <deque>
#include <optional>
#include <utility>

#include "common/thread_annotations.h"

namespace s3 {

template <typename T>
class BlockingQueue {
 public:
  BlockingQueue() = default;
  BlockingQueue(const BlockingQueue&) = delete;
  BlockingQueue& operator=(const BlockingQueue&) = delete;

  // Returns false if the queue is already closed (item is dropped).
  bool push(T item) S3_EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  // Blocks until an item is available or the queue is closed and empty.
  std::optional<T> pop() S3_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    while (!closed_ && items_.empty()) lock.wait(cv_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  // Non-blocking pop.
  std::optional<T> try_pop() S3_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  void close() S3_EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  [[nodiscard]] bool closed() const S3_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const S3_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return items_.size();
  }

 private:
  mutable AnnotatedMutex mu_{LockRank::kPoolQueue};
  std::condition_variable cv_;
  std::deque<T> items_ S3_GUARDED_BY(mu_);
  bool closed_ S3_GUARDED_BY(mu_) = false;
};

}  // namespace s3
