// Deterministic pseudo-random number generation for workload synthesis and
// simulation. Everything in this library that needs randomness takes an
// explicit Rng (or a seed), so every experiment is reproducible bit-for-bit.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/status.h"

namespace s3 {

// SplitMix64 — used to seed Xoshiro and for cheap stateless hashing of seeds.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// xoshiro256** 1.0 — fast, high-quality, 2^256-1 period.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL) {
    std::uint64_t sm = seed;
    for (auto& word : s_) word = splitmix64(sm);
  }

  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  // Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniform_u64(std::uint64_t n) {
    S3_CHECK(n > 0);
    // Lemire's nearly-divisionless bounded generation.
    __uint128_t m = static_cast<__uint128_t>(next()) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        m = static_cast<__uint128_t>(next()) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    S3_CHECK(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    uniform_u64(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  // Exponential with the given mean (inter-arrival sampling).
  double exponential(double mean) {
    S3_CHECK(mean > 0);
    double u;
    do {
      u = uniform();
    } while (u <= 0.0);
    return -mean * std::log(u);
  }

  // Standard normal via Marsaglia polar method.
  double normal(double mean = 0.0, double stddev = 1.0) {
    if (has_spare_) {
      has_spare_ = false;
      return mean + stddev * spare_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * factor;
    has_spare_ = true;
    return mean + stddev * u * factor;
  }

  bool bernoulli(double p) { return uniform() < p; }

  // Split off an independent generator (for per-thread / per-node streams).
  Rng split() { return Rng(next() ^ 0x9e3779b97f4a7c15ULL); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4] = {};
  double spare_ = 0.0;
  bool has_spare_ = false;
};

// Zipf(s) sampler over ranks {0, 1, ..., n-1} using the classic inverse-CDF
// over precomputed cumulative weights. Used by the synthetic text corpus so
// word frequencies look like natural language.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double exponent) : cdf_(n) {
    S3_CHECK(n > 0);
    S3_CHECK(exponent > 0);
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i + 1), exponent);
      cdf_[i] = sum;
    }
    for (auto& c : cdf_) c /= sum;
  }

  [[nodiscard]] std::size_t size() const { return cdf_.size(); }

  std::size_t sample(Rng& rng) const {
    const double u = rng.uniform();
    // Binary search for the first cumulative weight >= u.
    std::size_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

 private:
  std::vector<double> cdf_;
};

}  // namespace s3
