// Small string utilities used throughout: splitting, trimming, joining and
// fixed-width table cell formatting (for the report writers).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace s3 {

[[nodiscard]] std::vector<std::string> split(std::string_view text, char sep);
[[nodiscard]] std::string_view trim(std::string_view text);
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view sep);
[[nodiscard]] bool starts_with(std::string_view text, std::string_view prefix);

// Formats a double with the given precision, trimming trailing zeros only
// when precision is negative (auto mode).
[[nodiscard]] std::string format_double(double v, int precision = 2);

// Left/right-pads to the given width (truncates if longer).
[[nodiscard]] std::string pad_left(std::string_view s, std::size_t width);
[[nodiscard]] std::string pad_right(std::string_view s, std::size_t width);

// Formats seconds as "1h 23m 45.6s" style for human-facing output.
[[nodiscard]] std::string format_duration(double seconds);

}  // namespace s3
