#include "common/strings.h"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace s3 {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      break;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view trim(std::string_view text) {
  const auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r';
  };
  std::size_t b = 0;
  std::size_t e = text.size();
  while (b < e && is_space(text[b])) ++b;
  while (e > b && is_space(text[e - 1])) --e;
  return text.substr(b, e - b);
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string format_double(double v, int precision) {
  char buf[64];
  if (precision < 0) {
    std::snprintf(buf, sizeof(buf), "%g", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  }
  return buf;
}

std::string pad_left(std::string_view s, std::size_t width) {
  if (s.size() >= width) return std::string(s.substr(0, width));
  return std::string(width - s.size(), ' ') + std::string(s);
}

std::string pad_right(std::string_view s, std::size_t width) {
  if (s.size() >= width) return std::string(s.substr(0, width));
  return std::string(s) + std::string(width - s.size(), ' ');
}

std::string format_duration(double seconds) {
  std::ostringstream os;
  if (seconds < 0) {
    os << '-';
    seconds = -seconds;
  }
  const auto hours = static_cast<long>(seconds / 3600.0);
  seconds -= static_cast<double>(hours) * 3600.0;
  const auto minutes = static_cast<long>(seconds / 60.0);
  seconds -= static_cast<double>(minutes) * 60.0;
  if (hours > 0) os << hours << "h ";
  if (hours > 0 || minutes > 0) os << minutes << "m ";
  os << format_double(seconds, 1) << 's';
  return os.str();
}

}  // namespace s3
