// Core-pinned worker pool with one task deque per worker and work stealing.
// Replaces the single shared BlockingQueue of ThreadPool on the engine's hot
// path: a task submitted to worker w lands in w's own deque (preserving the
// locality the caller intended — e.g. the reduce partition whose shuffle
// bucket w's arenas own), and an idle worker steals from the back of a
// victim's deque instead of going to sleep, so a skewed wave still keeps
// every slot busy (the Metis per-core pool, OS4M's operation-level balance
// at intra-node scale).
//
// Pinning: when options.pin_cores is set each worker calls sched_setaffinity
// on itself (worker i -> cpu (cpu_offset + i) mod hardware_concurrency).
// On non-Linux platforms, or when the OS denies the call, pinning degrades
// to a no-op — pinned_workers() reports how many workers actually stuck.
//
// Exception contract (identical to ThreadPool): a task that throws does not
// kill its worker; the first exception since the last wait_idle() is rethrown
// from wait_idle() on the caller's thread, later ones are dropped. Lock
// discipline is machine-checked via common/thread_annotations.h.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"

namespace s3 {

struct PinnedThreadPoolOptions {
  std::size_t num_threads = 4;
  // Pin worker i to cpu (cpu_offset + i) % hardware_concurrency. Requires OS
  // support; silently a no-op where sched_setaffinity is unavailable/denied.
  bool pin_cores = false;
  int cpu_offset = 0;
};

class PinnedThreadPool {
 public:
  explicit PinnedThreadPool(PinnedThreadPoolOptions options);
  explicit PinnedThreadPool(std::size_t num_threads)
      : PinnedThreadPool(PinnedThreadPoolOptions{num_threads, false, 0}) {}
  ~PinnedThreadPool();

  PinnedThreadPool(const PinnedThreadPool&) = delete;
  PinnedThreadPool& operator=(const PinnedThreadPool&) = delete;

  // Enqueues a task on the next worker round-robin; returns false if the
  // pool is shutting down (the task is dropped — callers must handle it).
  [[nodiscard]] bool submit(std::function<void()> task) S3_EXCLUDES(mu_);

  // Enqueues a task on a specific worker's deque (worker % size()). The task
  // still runs on any worker if stolen; the index is a locality hint, not a
  // placement guarantee.
  [[nodiscard]] bool submit_to(std::size_t worker, std::function<void()> task)
      S3_EXCLUDES(mu_);

  // Blocks until every submitted task has finished. Rethrows the first
  // exception any task threw since the last wait_idle().
  void wait_idle() S3_EXCLUDES(mu_);

  // Stops accepting work, drains every deque, joins all workers. Called by
  // the destructor if not called explicitly. Exceptions from tasks that ran
  // during shutdown are discarded.
  void shutdown() S3_EXCLUDES(mu_);

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  // Workers that successfully pinned themselves (0 unless pin_cores was set
  // and the OS honored the affinity calls).
  [[nodiscard]] std::size_t pinned_workers() const {
    return pinned_workers_.load(std::memory_order_relaxed);
  }

  // Tasks executed by a worker other than the one they were submitted to
  // (load-balance telemetry; also exported as pool.steals).
  [[nodiscard]] std::uint64_t steals() const {
    return steals_.load(std::memory_order_relaxed);
  }

  // Index of the calling worker within this pool, or -1 when called from a
  // thread that is not one of this pool's workers. Arena pools use this for
  // first-touch shard selection.
  [[nodiscard]] int current_worker_index() const;

 private:
  // One deque per worker. The owner pops from the front (submission order);
  // thieves steal from the back, so owner and thief contend on opposite ends
  // only when a single task remains.
  struct WorkerQueue {
    mutable AnnotatedMutex mu{LockRank::kPoolQueue};
    std::deque<std::function<void()>> tasks S3_GUARDED_BY(mu);
  };

  void worker_loop(std::size_t self) S3_EXCLUDES(mu_);
  [[nodiscard]] bool pop_or_steal(std::size_t self,
                                  std::function<void()>& task,
                                  bool& stolen) S3_EXCLUDES(mu_);
  [[nodiscard]] bool enqueue(std::size_t worker, std::function<void()> task)
      S3_EXCLUDES(mu_);

  PinnedThreadPoolOptions options_;
  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;

  // Coordination lock: pending/queued counters, shutdown flag, error slot.
  // Never held while acquiring a WorkerQueue::mu, and never acquired while
  // one is held — the two levels stay disjoint, so no cycle is possible.
  mutable AnnotatedMutex mu_{LockRank::kPoolCoordination};
  std::condition_variable work_cv_;  // queued_ > 0 or shutdown_
  std::condition_variable idle_cv_;  // pending_ == 0
  std::size_t pending_ S3_GUARDED_BY(mu_) = 0;  // submitted, not yet finished
  std::size_t queued_ S3_GUARDED_BY(mu_) = 0;   // submitted, not yet popped
  bool shutdown_ S3_GUARDED_BY(mu_) = false;
  std::exception_ptr first_error_ S3_GUARDED_BY(mu_);

  std::atomic<std::size_t> next_worker_{0};     // round-robin submit cursor
  std::atomic<std::size_t> pinned_workers_{0};
  std::atomic<std::uint64_t> steals_{0};
};

}  // namespace s3
