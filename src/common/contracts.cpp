#include "common/contracts.h"

#include <atomic>

namespace s3::internal {
namespace {

std::atomic<FatalHook> g_fatal_hook{nullptr};

// One fatal gets to run the hook; a second fatal raised *by* the hook (or by
// another thread racing into a check failure while the dump is being
// written) must not recurse into it.
std::atomic<bool> g_fatal_in_progress{false};

}  // namespace

void set_fatal_hook(FatalHook hook) {
  g_fatal_hook.store(hook, std::memory_order_release);
}

void fatal_abort(const char* message) {
  if (!g_fatal_in_progress.exchange(true, std::memory_order_acq_rel)) {
    if (FatalHook hook = g_fatal_hook.load(std::memory_order_acquire)) {
      hook(message);
    }
  }
  std::abort();
}

void check_failed(const char* expr, const char* file, int line,
                  const std::string& extra) {
  std::ostringstream os;
  os << "S3_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!extra.empty()) os << " — " << extra;
  const std::string message = os.str();
  std::cerr << message << std::endl;
  fatal_abort(message.c_str());
}

}  // namespace s3::internal
