// Lock-rank registry: the runtime half of the deadlock defense (the static
// half is tools/s3lockcheck, which derives the same ordering constraints from
// source and cross-checks them against these declared ranks).
//
// Every AnnotatedMutex/AnnotatedSharedMutex in src/ declares one rank from
// the hierarchy below at construction. The rule is strict monotonicity: a
// thread may only acquire a mutex whose rank is strictly greater than the
// rank of every mutex it already holds. Two mutexes with the same rank must
// therefore never be held together (the shards of one pool, the per-worker
// queues, the shuffle buckets — all taken one at a time by construction).
//
// Ranks ascend from scheduler entry points toward leaf subsystems, matching
// the acquisition orders that actually occur (DESIGN.md §14 documents every
// mutex, what it guards, and which Algorithm 1 / failure-path code runs
// under it):
//
//   sched (JobQueueManager) → wave collect (map, then reduce) → engine
//   state → wave recovery ctx → shuffle registry → shuffle bucket → arena
//   shard → pool coordination → pool queues → DFS → cluster health →
//   observability (journal, metrics, trace sink, trace ring) → logging.
//
// The wave-collect-before-engine-state order comes from run_wave's commit
// section, which holds MapCollect::mu, ReduceCollect::mu, and mu_ together
// while folding wave outputs into member job state.
//
// Validation is active when S3_LOCK_RANK_CHECKS is 1: the build defines it
// for every CMAKE_BUILD_TYPE except Release (so the default RelWithDebInfo
// tier-1 build and all sanitizer builds validate every acquisition); without
// a build-system definition it follows NDEBUG. In Release the note_* calls
// are empty inline functions and the validator compiles out entirely.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#ifndef S3_LOCK_RANK_CHECKS
#ifdef NDEBUG
#define S3_LOCK_RANK_CHECKS 0
#else
#define S3_LOCK_RANK_CHECKS 1
#endif
#endif

namespace s3 {

// Numeric gaps leave room to slot new subsystems in without renumbering.
// Lower rank = acquired first (outermost). kUnranked mutexes (the default
// for AnnotatedMutex{}) are exempt from validation; s3lockcheck's
// unranked-mutex rule keeps src/ free of them.
enum class LockRank : std::uint16_t {
  kUnranked = 0,
  // Submission-service entry path (src/service/): tenant registry before the
  // per-tenant token buckets it indexes; the admission queue lock comes last
  // and is never held while calling into the scheduler. These rank below the
  // scheduler because the service is the outermost layer of the system.
  kServiceRegistry = 2,
  kServiceTenant = 4,
  kServiceQueue = 6,
  // Scheduler entry: Algorithm 1's admit/form_batch critical section.
  kSchedJobQueue = 10,
  // JobQueueManager admission shards: admit() takes exactly one shard lock
  // (never two — shards share a rank), and form_batch's fold acquires shards
  // one at a time while holding kSchedJobQueue, so they rank just above it.
  kSchedAdmitShard = 15,
  // Per-wave output collection. run_wave's commit section nests
  // MapCollect::mu → ReduceCollect::mu → LocalEngine::mu_, so the two
  // collect locks rank below engine state and below each other.
  kEngineMapCollect = 20,
  kEngineReduceCollect = 23,
  // Engine job-state map (LocalEngine::mu_). Held while registering the job
  // with the shuffle registry, so it must rank below kShuffleRegistry.
  kEngineState = 26,
  // Per-wave recovery bookkeeping (LocalEngine::WaveCtx::mu).
  kEngineWaveCtx = 30,
  // Shuffle registry (ShuffleStore::registry_mu_); documented order is
  // registry before bucket, never the reverse.
  kShuffleRegistry = 40,
  kShuffleBucket = 45,
  // Arena shards are taken one at a time (acquire scans with per-shard
  // scope), so a single rank suffices.
  kArenaShard = 50,
  // Pool coordination (ThreadPool::idle_mu_, PinnedThreadPool::mu_) vs the
  // task queues (BlockingQueue::mu_, WorkerQueue::mu): the pools never nest
  // them, but coordination logically wraps queue access.
  kPoolCoordination = 60,
  kPoolQueue = 65,
  kDfsBlockStore = 70,
  kDfsReplicaHealth = 75,
  kClusterHeartbeat = 80,
  // View-check generation-cell pool (common/view_checks.cpp). A leaf taken
  // by KVBatch construction/destruction, which runs inside shuffle-bucket
  // and arena-shard critical sections when vectors of batches grow.
  kViewGenPool = 85,
  // Observability leaves: code under any lock above may journal, bump
  // metrics, trace, or log — never the other way around.
  kObsJournal = 90,
  // Snapshot-exporter coordination (obs/prometheus.cpp): held only around
  // its interval wait, below kObsMetrics because the export itself reads
  // the registry.
  kObsSnapshot = 93,
  kObsMetrics = 95,
  kObsTraceSink = 100,
  kObsTraceRing = 105,
  kLogging = 110,
};

// Human-readable enumerator name for abort messages ("kShuffleBucket").
const char* lock_rank_name(LockRank rank);

namespace lock_rank {

#if S3_LOCK_RANK_CHECKS

// Validates (against the calling thread's held-rank stack) that acquiring
// `rank` preserves strict monotonicity, then records the acquisition.
// Called *before* the underlying mutex blocks, so an inversion aborts with
// both ranks named instead of deadlocking. kUnranked is a no-op.
void note_acquire(LockRank rank, const void* mu);

// Removes the most recent acquisition of `mu` from the held stack. Ranked
// mutexes released out of LIFO order are fine (the stack is searched by
// address); releasing a mutex that was never noted is ignored.
void note_release(LockRank rank, const void* mu);

// Ranks currently held by the calling thread, outermost first.
std::vector<LockRank> held_for_test();

// Async-signal-safe variant for the crash-dump writer: copies up to `cap`
// held ranks (outermost first) into `out` without allocating, and returns
// how many the thread actually holds (callers clamp to `cap` when reading).
std::size_t held_ranks(LockRank* out, std::size_t cap);

// Pushes a synthetic held frame so tests can prove the validator fires
// (see tests/invariant_death_test.cpp). Pair with reset_for_test().
void corrupt_held_rank_for_test(LockRank rank);

// Clears the calling thread's held stack (test isolation only).
void reset_for_test();

#else  // !S3_LOCK_RANK_CHECKS

inline void note_acquire(LockRank, const void*) {}
inline void note_release(LockRank, const void*) {}
inline std::vector<LockRank> held_for_test() { return {}; }
inline std::size_t held_ranks(LockRank*, std::size_t) { return 0; }
inline void corrupt_held_rank_for_test(LockRank) {}
inline void reset_for_test() {}

#endif  // S3_LOCK_RANK_CHECKS

}  // namespace lock_rank
}  // namespace s3
