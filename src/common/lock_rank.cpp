#include "common/lock_rank.h"

#include "common/contracts.h"

namespace s3 {

const char* lock_rank_name(LockRank rank) {
  switch (rank) {
    case LockRank::kUnranked:
      return "kUnranked";
    case LockRank::kServiceRegistry:
      return "kServiceRegistry";
    case LockRank::kServiceTenant:
      return "kServiceTenant";
    case LockRank::kServiceQueue:
      return "kServiceQueue";
    case LockRank::kSchedJobQueue:
      return "kSchedJobQueue";
    case LockRank::kSchedAdmitShard:
      return "kSchedAdmitShard";
    case LockRank::kEngineMapCollect:
      return "kEngineMapCollect";
    case LockRank::kEngineReduceCollect:
      return "kEngineReduceCollect";
    case LockRank::kEngineState:
      return "kEngineState";
    case LockRank::kEngineWaveCtx:
      return "kEngineWaveCtx";
    case LockRank::kShuffleRegistry:
      return "kShuffleRegistry";
    case LockRank::kShuffleBucket:
      return "kShuffleBucket";
    case LockRank::kArenaShard:
      return "kArenaShard";
    case LockRank::kPoolCoordination:
      return "kPoolCoordination";
    case LockRank::kPoolQueue:
      return "kPoolQueue";
    case LockRank::kDfsBlockStore:
      return "kDfsBlockStore";
    case LockRank::kDfsReplicaHealth:
      return "kDfsReplicaHealth";
    case LockRank::kClusterHeartbeat:
      return "kClusterHeartbeat";
    case LockRank::kViewGenPool:
      return "kViewGenPool";
    case LockRank::kObsJournal:
      return "kObsJournal";
    case LockRank::kObsSnapshot:
      return "kObsSnapshot";
    case LockRank::kObsMetrics:
      return "kObsMetrics";
    case LockRank::kObsTraceSink:
      return "kObsTraceSink";
    case LockRank::kObsTraceRing:
      return "kObsTraceRing";
    case LockRank::kLogging:
      return "kLogging";
  }
  return "<invalid LockRank>";
}

#if S3_LOCK_RANK_CHECKS

namespace lock_rank {
namespace {

struct HeldLock {
  LockRank rank;
  const void* mu;
};

// Function-local thread_local so first use from any thread (including
// detached observability threads during shutdown) constructs it lazily.
std::vector<HeldLock>& held_stack() {
  thread_local std::vector<HeldLock> stack;
  return stack;
}

}  // namespace

void note_acquire(LockRank rank, const void* mu) {
  if (rank == LockRank::kUnranked) return;
  auto& stack = held_stack();
  if (!stack.empty()) {
    // Pushes are rank-monotonic, so the innermost frame is also the maximum
    // even after out-of-order releases removed middle frames.
    const HeldLock& top = stack.back();
    S3_CHECK_MSG(
        static_cast<std::uint16_t>(rank) > static_cast<std::uint16_t>(top.rank),
        "lock-rank inversion: acquiring "
            << lock_rank_name(rank) << " (" << static_cast<int>(rank)
            << ") while holding " << lock_rank_name(top.rank) << " ("
            << static_cast<int>(top.rank)
            << "); ranks must strictly increase (see src/common/lock_rank.h "
               "and DESIGN.md §14)");
  }
  stack.push_back({rank, mu});
}

void note_release(LockRank rank, const void* mu) {
  if (rank == LockRank::kUnranked) return;
  auto& stack = held_stack();
  for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
    if (it->mu == mu) {
      stack.erase(std::next(it).base());
      return;
    }
  }
  // Not found: the mutex was acquired before this TU's checks were active
  // (e.g. a static constructed under a different S3_LOCK_RANK_CHECKS
  // setting). Ignoring is safe — the stack only ever under-approximates.
}

std::vector<LockRank> held_for_test() {
  std::vector<LockRank> out;
  out.reserve(held_stack().size());
  for (const HeldLock& h : held_stack()) out.push_back(h.rank);
  return out;
}

std::size_t held_ranks(LockRank* out, std::size_t cap) {
  const auto& stack = held_stack();
  const std::size_t copy = stack.size() < cap ? stack.size() : cap;
  for (std::size_t i = 0; i < copy; ++i) out[i] = stack[i].rank;
  return stack.size();
}

void corrupt_held_rank_for_test(LockRank rank) {
  held_stack().push_back({rank, nullptr});
}

void reset_for_test() { held_stack().clear(); }

}  // namespace lock_rank

#endif  // S3_LOCK_RANK_CHECKS

}  // namespace s3
