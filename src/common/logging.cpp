#include "common/logging.h"

#include <iostream>

namespace s3 {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::set_level(LogLevel level) {
  MutexLock lock(mu_);
  level_ = level;
}

LogLevel Logger::level() const {
  MutexLock lock(mu_);
  return level_;
}

bool Logger::enabled(LogLevel level) const {
  return static_cast<int>(level) >= static_cast<int>(this->level());
}

void Logger::write(LogLevel level, const std::string& component,
                   const std::string& message) {
  MutexLock lock(mu_);
  std::cerr << '[' << log_level_name(level) << "] " << component << ": "
            << message << '\n';
}

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace s3
