#include "common/thread_pool.h"

#include <utility>

#include "common/status.h"

namespace s3 {

ThreadPool::ThreadPool(std::size_t num_threads) {
  S3_CHECK(num_threads > 0);
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

bool ThreadPool::submit(std::function<void()> task) {
  {
    MutexLock lock(idle_mu_);
    if (shutdown_) return false;
    ++pending_;
  }
  if (!queue_.push(std::move(task))) {
    MutexLock lock(idle_mu_);
    --pending_;
    return false;
  }
  return true;
}

void ThreadPool::wait_idle() {
  std::exception_ptr error;
  {
    MutexLock lock(idle_mu_);
    while (pending_ != 0) lock.wait(idle_cv_);
    error = std::exchange(first_error_, nullptr);
  }
  if (error) std::rethrow_exception(error);
}

void ThreadPool::shutdown() {
  {
    MutexLock lock(idle_mu_);
    if (shutdown_) return;
    shutdown_ = true;
  }
  queue_.close();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::worker_loop() {
  while (true) {
    auto task = queue_.pop();
    if (!task.has_value()) return;  // closed and drained
    std::exception_ptr error;
    try {
      (*task)();
    } catch (...) {
      error = std::current_exception();
    }
    {
      MutexLock lock(idle_mu_);
      if (error && first_error_ == nullptr) first_error_ = error;
      --pending_;
      if (pending_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace s3
