#include "common/pinned_thread_pool.h"

#include <utility>

#include "common/status.h"

#if defined(__linux__)
#include <sched.h>
#endif

namespace s3 {
namespace {

// Worker identity of the current thread. A plain pointer+index pair (rather
// than an index alone) so nested pools — the engine runs one map and one
// reduce pool — cannot alias each other's shard indices.
struct WorkerTls {
  const PinnedThreadPool* pool = nullptr;
  int index = -1;
};
thread_local WorkerTls tls_worker;

// Best-effort self-pin of the calling thread to one cpu. Returns true only
// when the affinity call was actually honored. Candidates come from the
// thread's current affinity mask, not logical CPUs 0..hw-1: in a container
// restricted to a non-prefix cpuset (say CPUs 4-7), pinning to index 0
// would fail even though valid CPUs exist. Worker i gets the i-th allowed
// CPU, wrapping.
bool pin_self_to_cpu(std::size_t cpu_index) {
#if defined(__linux__)
  cpu_set_t allowed;
  CPU_ZERO(&allowed);
  if (sched_getaffinity(0, sizeof(allowed), &allowed) != 0) return false;
  const int allowed_count = CPU_COUNT(&allowed);
  if (allowed_count <= 0) return false;
  int skip = static_cast<int>(cpu_index % static_cast<std::size_t>(allowed_count));
  for (int cpu = 0; cpu < CPU_SETSIZE; ++cpu) {
    if (!CPU_ISSET(cpu, &allowed)) continue;
    if (skip-- > 0) continue;
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(cpu, &set);
    return sched_setaffinity(0, sizeof(set), &set) == 0;
  }
  return false;
#else
  (void)cpu_index;
  return false;
#endif
}

}  // namespace

PinnedThreadPool::PinnedThreadPool(PinnedThreadPoolOptions options)
    : options_(options) {
  S3_CHECK(options_.num_threads > 0);
  queues_.reserve(options_.num_threads);
  for (std::size_t i = 0; i < options_.num_threads; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(options_.num_threads);
  for (std::size_t i = 0; i < options_.num_threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

PinnedThreadPool::~PinnedThreadPool() { shutdown(); }

int PinnedThreadPool::current_worker_index() const {
  return tls_worker.pool == this ? tls_worker.index : -1;
}

bool PinnedThreadPool::enqueue(std::size_t worker,
                               std::function<void()> task) {
  {
    MutexLock lock(mu_);
    if (shutdown_) return false;
    ++pending_;
    ++queued_;
  }
  // The counters are published before the task itself: a worker that wakes
  // in this window sees queued_ > 0, rescans, and spins briefly until the
  // push below lands — never sleeps through it.
  {
    MutexLock lock(queues_[worker]->mu);
    queues_[worker]->tasks.push_back(std::move(task));
  }
  work_cv_.notify_one();
  return true;
}

bool PinnedThreadPool::submit(std::function<void()> task) {
  const std::size_t worker =
      next_worker_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
  return enqueue(worker, std::move(task));
}

bool PinnedThreadPool::submit_to(std::size_t worker,
                                 std::function<void()> task) {
  return enqueue(worker % queues_.size(), std::move(task));
}

bool PinnedThreadPool::pop_or_steal(std::size_t self,
                                    std::function<void()>& task,
                                    bool& stolen) {
  bool found = false;
  // Own deque first, from the front (submission order — waves stay FIFO).
  {
    MutexLock lock(queues_[self]->mu);
    if (!queues_[self]->tasks.empty()) {
      task = std::move(queues_[self]->tasks.front());
      queues_[self]->tasks.pop_front();
      stolen = false;
      found = true;
    }
  }
  // Steal from the back of the next non-empty victim, so the thief takes the
  // task furthest from what the owner is about to run.
  for (std::size_t hop = 1; !found && hop < queues_.size(); ++hop) {
    const std::size_t victim = (self + hop) % queues_.size();
    MutexLock lock(queues_[victim]->mu);
    if (queues_[victim]->tasks.empty()) continue;
    task = std::move(queues_[victim]->tasks.back());
    queues_[victim]->tasks.pop_back();
    stolen = true;
    found = true;
  }
  if (!found) return false;
  MutexLock counters(mu_);
  --queued_;
  return true;
}

void PinnedThreadPool::worker_loop(std::size_t self) {
  tls_worker.pool = this;
  tls_worker.index = static_cast<int>(self);
  if (options_.pin_cores &&
      pin_self_to_cpu(static_cast<std::size_t>(options_.cpu_offset) + self)) {
    pinned_workers_.fetch_add(1, std::memory_order_relaxed);
  }
  while (true) {
    std::function<void()> task;
    bool stolen = false;
    if (pop_or_steal(self, task, stolen)) {
      if (stolen) steals_.fetch_add(1, std::memory_order_relaxed);
      std::exception_ptr error;
      try {
        task();
      } catch (...) {
        error = std::current_exception();
      }
      MutexLock lock(mu_);
      if (error && first_error_ == nullptr) first_error_ = error;
      --pending_;
      if (pending_ == 0) idle_cv_.notify_all();
      continue;
    }
    MutexLock lock(mu_);
    while (queued_ == 0 && !shutdown_) lock.wait(work_cv_);
    if (queued_ == 0 && shutdown_) return;
    // queued_ > 0: something arrived (possibly mid-push) — rescan.
  }
}

void PinnedThreadPool::wait_idle() {
  std::exception_ptr error;
  {
    MutexLock lock(mu_);
    while (pending_ != 0) lock.wait(idle_cv_);
    error = std::exchange(first_error_, nullptr);
  }
  if (error) std::rethrow_exception(error);
}

void PinnedThreadPool::shutdown() {
  {
    MutexLock lock(mu_);
    if (shutdown_) return;
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

}  // namespace s3
