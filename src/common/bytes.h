// Byte-size vocabulary: constants, a ByteSize value type and human-readable
// formatting. All data-volume accounting in the library uses ByteSize so that
// MB-vs-MiB confusion cannot creep into the cost model.
#pragma once

#include <cstdint>
#include <ostream>
#include <sstream>
#include <string>

namespace s3 {

constexpr std::uint64_t kKiB = 1024ULL;
constexpr std::uint64_t kMiB = 1024ULL * kKiB;
constexpr std::uint64_t kGiB = 1024ULL * kMiB;
constexpr std::uint64_t kTiB = 1024ULL * kGiB;

class ByteSize {
 public:
  constexpr ByteSize() = default;
  constexpr explicit ByteSize(std::uint64_t bytes) : bytes_(bytes) {}

  static constexpr ByteSize bytes(std::uint64_t n) { return ByteSize(n); }
  static constexpr ByteSize kib(std::uint64_t n) { return ByteSize(n * kKiB); }
  static constexpr ByteSize mib(std::uint64_t n) { return ByteSize(n * kMiB); }
  static constexpr ByteSize gib(std::uint64_t n) { return ByteSize(n * kGiB); }

  [[nodiscard]] constexpr std::uint64_t count() const { return bytes_; }
  [[nodiscard]] constexpr double as_mib() const {
    return static_cast<double>(bytes_) / static_cast<double>(kMiB);
  }
  [[nodiscard]] constexpr double as_gib() const {
    return static_cast<double>(bytes_) / static_cast<double>(kGiB);
  }

  constexpr ByteSize& operator+=(ByteSize o) {
    bytes_ += o.bytes_;
    return *this;
  }
  friend constexpr ByteSize operator+(ByteSize a, ByteSize b) {
    return ByteSize(a.bytes_ + b.bytes_);
  }
  friend constexpr ByteSize operator*(ByteSize a, std::uint64_t k) {
    return ByteSize(a.bytes_ * k);
  }
  friend constexpr bool operator==(ByteSize a, ByteSize b) {
    return a.bytes_ == b.bytes_;
  }
  friend constexpr bool operator!=(ByteSize a, ByteSize b) {
    return a.bytes_ != b.bytes_;
  }
  friend constexpr bool operator<(ByteSize a, ByteSize b) {
    return a.bytes_ < b.bytes_;
  }
  friend constexpr bool operator<=(ByteSize a, ByteSize b) {
    return a.bytes_ <= b.bytes_;
  }

  [[nodiscard]] std::string to_string() const {
    std::ostringstream os;
    const auto b = static_cast<double>(bytes_);
    if (bytes_ >= kTiB) {
      os << b / static_cast<double>(kTiB) << " TiB";
    } else if (bytes_ >= kGiB) {
      os << b / static_cast<double>(kGiB) << " GiB";
    } else if (bytes_ >= kMiB) {
      os << b / static_cast<double>(kMiB) << " MiB";
    } else if (bytes_ >= kKiB) {
      os << b / static_cast<double>(kKiB) << " KiB";
    } else {
      os << bytes_ << " B";
    }
    return os.str();
  }

  friend std::ostream& operator<<(std::ostream& os, ByteSize s) {
    return os << s.to_string();
  }

 private:
  std::uint64_t bytes_ = 0;
};

}  // namespace s3
