// Minimal Status / StatusOr error-handling vocabulary (no exceptions on the
// hot path; exceptions are reserved for programmer errors via S3_CHECK).
// The check macros themselves live in common/contracts.h and are re-exported
// here because nearly every client of Status also states invariants.
#pragma once

#include <cstdlib>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <utility>

#include "common/contracts.h"

namespace s3 {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kInternal,
  kUnavailable,
  // Permanent data loss: every replica of a block is dead or corrupt. Unlike
  // kUnavailable (transient, retry elsewhere), no retry can succeed.
  kDataLoss,
};

[[nodiscard]] constexpr const char* status_code_name(StatusCode c) {
  switch (c) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kDataLoss:
      return "DATA_LOSS";
  }
  return "UNKNOWN";
}

class [[nodiscard]] Status {
 public:
  Status() = default;  // OK
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  [[nodiscard]] static Status ok() { return Status(); }
  [[nodiscard]] static Status invalid_argument(std::string m) {
    return {StatusCode::kInvalidArgument, std::move(m)};
  }
  [[nodiscard]] static Status not_found(std::string m) {
    return {StatusCode::kNotFound, std::move(m)};
  }
  [[nodiscard]] static Status already_exists(std::string m) {
    return {StatusCode::kAlreadyExists, std::move(m)};
  }
  [[nodiscard]] static Status failed_precondition(std::string m) {
    return {StatusCode::kFailedPrecondition, std::move(m)};
  }
  [[nodiscard]] static Status out_of_range(std::string m) {
    return {StatusCode::kOutOfRange, std::move(m)};
  }
  [[nodiscard]] static Status internal(std::string m) {
    return {StatusCode::kInternal, std::move(m)};
  }
  [[nodiscard]] static Status unavailable(std::string m) {
    return {StatusCode::kUnavailable, std::move(m)};
  }
  // The message must name the lost block (s3lint rule status-dataloss).
  [[nodiscard]] static Status data_loss(std::string m) {
    return {StatusCode::kDataLoss, std::move(m)};
  }

  [[nodiscard]] bool is_ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  [[nodiscard]] std::string to_string() const {
    if (is_ok()) return "OK";
    std::ostringstream os;
    os << status_code_name(code_) << ": " << message_;
    return os.str();
  }

  friend std::ostream& operator<<(std::ostream& os, const Status& s) {
    return os << s.to_string();
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

// A value-or-status result. Accessing value() on an error aborts, so callers
// must check ok() first (or use value_or()).
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(Status s) : status_(std::move(s)) {}  // NOLINT: implicit by design
  StatusOr(T v) : value_(std::move(v)) {}        // NOLINT: implicit by design

  [[nodiscard]] bool is_ok() const { return status_.is_ok(); }
  [[nodiscard]] const Status& status() const { return status_; }

  [[nodiscard]] T& value() & {
    check_ok();
    return *value_;
  }
  [[nodiscard]] const T& value() const& {
    check_ok();
    return *value_;
  }
  [[nodiscard]] T&& value() && {
    check_ok();
    return std::move(*value_);
  }
  [[nodiscard]] T value_or(T fallback) const {
    return is_ok() ? *value_ : std::move(fallback);
  }

 private:
  void check_ok() const {
    if (!is_ok()) {
      std::ostringstream os;
      os << "StatusOr::value() on error: " << status_;
      const std::string message = os.str();
      std::cerr << message << "\n";
      internal::fatal_abort(message.c_str());
    }
  }

  Status status_;
  std::optional<T> value_;
};

}  // namespace s3
