// Capacity-enforcing deque for admission pipelines. Not thread-safe: callers
// hold their own mutex (the submission service keeps every BoundedDeque under
// its kServiceQueue lock). Unlike std::deque, construction requires an
// explicit capacity and push_back refuses to grow past it, so a queue at a
// service boundary cannot silently become an unbounded buffer — the s3lint
// bounded-queue rule bans raw std:: queue containers in src/service/ and
// points at this type.
#pragma once

#include <cstddef>
#include <deque>
#include <utility>

#include "common/contracts.h"

namespace s3 {

template <typename T>
class BoundedDeque {
 public:
  explicit BoundedDeque(std::size_t capacity) : capacity_(capacity) {
    S3_CHECK_MSG(capacity > 0, "BoundedDeque capacity must be positive");
  }

  // Returns false (item dropped) when the deque is at capacity. The caller
  // turns that into a typed backpressure decision.
  [[nodiscard]] bool push_back(T item) {
    if (items_.size() >= capacity_) return false;
    items_.push_back(std::move(item));
    return true;
  }

  T pop_front() {
    S3_CHECK_MSG(!items_.empty(), "pop_front on empty BoundedDeque");
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  T pop_back() {
    S3_CHECK_MSG(!items_.empty(), "pop_back on empty BoundedDeque");
    T item = std::move(items_.back());
    items_.pop_back();
    return item;
  }

  [[nodiscard]] const T& front() const {
    S3_CHECK_MSG(!items_.empty(), "front on empty BoundedDeque");
    return items_.front();
  }

  // Capacity can be re-pointed at runtime (quota flapping). Shrinking below
  // the current size does not drop items; it only refuses new pushes until
  // the queue drains under the new bound.
  void set_capacity(std::size_t capacity) {
    S3_CHECK_MSG(capacity > 0, "BoundedDeque capacity must be positive");
    capacity_ = capacity;
  }

  // Removes the element at `index` (0 = front). Used by the load shedder to
  // evict a chosen victim from the middle of a queue.
  T erase_at(std::size_t index) {
    S3_CHECK_MSG(index < items_.size(), "erase_at out of range");
    auto it = items_.begin() + static_cast<std::ptrdiff_t>(index);
    T item = std::move(*it);
    items_.erase(it);
    return item;
  }

  [[nodiscard]] std::size_t size() const { return items_.size(); }
  [[nodiscard]] bool empty() const { return items_.empty(); }
  [[nodiscard]] bool full() const { return items_.size() >= capacity_; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  using const_iterator = typename std::deque<T>::const_iterator;
  [[nodiscard]] const_iterator begin() const { return items_.begin(); }
  [[nodiscard]] const_iterator end() const { return items_.end(); }

 private:
  std::deque<T> items_;
  std::size_t capacity_;
};

}  // namespace s3
