#include "common/view_checks.h"

#if S3_VIEW_CHECKS

#include <deque>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/contracts.h"
#include "common/thread_annotations.h"

namespace s3 {
namespace view_checks {
namespace {

struct CellPool {
  // Leaf rank: cells are acquired/retired by KVBatch construction and
  // destruction, which runs inside shuffle-bucket and arena-shard critical
  // sections (vector growth moves batches under those locks). The critical
  // sections below call nothing, so nothing ranks above this but logging.
  AnnotatedMutex mu{LockRank::kViewGenPool};
  // Deque so cells never move once allocated: a stale DebugView may hold a
  // pointer to a parked cell indefinitely.
  std::deque<GenCell> cells S3_GUARDED_BY(mu);
  std::vector<GenCell*> free S3_GUARDED_BY(mu);
  std::size_t live S3_GUARDED_BY(mu) = 0;
};

// Intentionally leaked: stale views may be validated during static
// destruction, after a function-local static pool would have been torn down.
CellPool& pool() {
  static CellPool* p = new CellPool;
  return *p;
}

std::atomic<std::uint64_t>& next_generation() {
  static std::atomic<std::uint64_t> gen{1};
  return gen;
}

std::uint64_t fresh_generation() {
  return next_generation().fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

GenCell* acquire_cell() {
  CellPool& p = pool();
  GenCell* cell = nullptr;
  {
    MutexLock lock(p.mu);
    if (!p.free.empty()) {
      cell = p.free.back();
      p.free.pop_back();
    } else {
      cell = &p.cells.emplace_back();
    }
    ++p.live;
  }
  cell->value.store(fresh_generation(), std::memory_order_relaxed);
  return cell;
}

std::uint64_t bump_cell(GenCell* cell) {
  const std::uint64_t gen = fresh_generation();
  cell->value.store(gen, std::memory_order_relaxed);
  return gen;
}

void retire_cell(GenCell* cell) {
  // Bump first so views born under the final owner go stale even while the
  // cell sits on the free list.
  bump_cell(cell);
  CellPool& p = pool();
  MutexLock lock(p.mu);
  p.free.push_back(cell);
  --p.live;
}

std::size_t live_cells_for_test() {
  CellPool& p = pool();
  MutexLock lock(p.mu);
  return p.live;
}

}  // namespace view_checks

std::ostream& operator<<(std::ostream& os, const DebugView& v) {
  return os << DebugView::sv(v);
}

void DebugView::abort_stale() const {
  std::ostringstream os;
  os << "s3 view-check failure: stale view from " << source_
     << ": born at arena generation " << birth_ << ", arena is now at "
     << "generation " << view_checks::cell_value(cell_)
     << " — the arena was cleared, reallocated by append, prefaulted, "
        "recycled, moved, or destroyed after this view was taken; "
        "re-fetch views after any arena mutation (DESIGN.md §15)";
  const std::string message = os.str();
  std::cerr << message << std::endl;
  // Through the sanctioned fatal path so the crash sink (when installed)
  // dumps the flight record before the abort.
  internal::fatal_abort(message.c_str());
}

}  // namespace s3

#endif  // S3_VIEW_CHECKS
