// Strongly-typed identifiers and fundamental value types shared across the
// whole library. Every subsystem (dfs, cluster, engine, sched, sim) speaks in
// these IDs, so mixing up, say, a JobId and a NodeId is a compile error.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <ostream>

namespace s3 {

// CRTP-free strong ID: a thin wrapper around a 64-bit value with a tag type.
// Comparable, hashable, streamable; no implicit conversions between tags.
template <typename Tag>
class StrongId {
 public:
  constexpr StrongId() = default;
  constexpr explicit StrongId(std::uint64_t v) : value_(v) {}

  [[nodiscard]] constexpr std::uint64_t value() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ != kInvalid; }

  friend constexpr bool operator==(StrongId a, StrongId b) {
    return a.value_ == b.value_;
  }
  friend constexpr bool operator!=(StrongId a, StrongId b) {
    return a.value_ != b.value_;
  }
  friend constexpr bool operator<(StrongId a, StrongId b) {
    return a.value_ < b.value_;
  }
  friend std::ostream& operator<<(std::ostream& os, StrongId id) {
    return os << Tag::prefix() << id.value_;
  }

  static constexpr std::uint64_t kInvalid =
      std::numeric_limits<std::uint64_t>::max();

 private:
  std::uint64_t value_ = kInvalid;
};

struct JobTag {
  static constexpr const char* prefix() { return "job-"; }
};
struct SubJobTag {
  static constexpr const char* prefix() { return "subjob-"; }
};
struct BatchTag {
  static constexpr const char* prefix() { return "batch-"; }
};
struct TaskTag {
  static constexpr const char* prefix() { return "task-"; }
};
struct NodeTag {
  static constexpr const char* prefix() { return "node-"; }
};
struct FileTag {
  static constexpr const char* prefix() { return "file-"; }
};
struct BlockTag {
  static constexpr const char* prefix() { return "block-"; }
};
struct SegmentTag {
  static constexpr const char* prefix() { return "segment-"; }
};
struct RackTag {
  static constexpr const char* prefix() { return "rack-"; }
};
struct TenantTag {
  static constexpr const char* prefix() { return "tenant-"; }
};

using JobId = StrongId<JobTag>;
using SubJobId = StrongId<SubJobTag>;
using BatchId = StrongId<BatchTag>;
using TaskId = StrongId<TaskTag>;
using NodeId = StrongId<NodeTag>;
using FileId = StrongId<FileTag>;
using BlockId = StrongId<BlockTag>;
using SegmentId = StrongId<SegmentTag>;
using RackId = StrongId<RackTag>;
using TenantId = StrongId<TenantTag>;

// Simulated time, in seconds. The simulator and the schedulers are written
// against this; the real engine maps wall-clock time onto it.
using SimTime = double;
constexpr SimTime kTimeNever = std::numeric_limits<SimTime>::infinity();

// Monotonically increasing ID generator (not thread-safe; each owner keeps
// its own generator).
template <typename Id>
class IdGenerator {
 public:
  Id next() { return Id(next_++); }
  [[nodiscard]] std::uint64_t issued() const { return next_; }

 private:
  std::uint64_t next_ = 0;
};

}  // namespace s3

namespace std {
template <typename Tag>
struct hash<s3::StrongId<Tag>> {
  size_t operator()(s3::StrongId<Tag> id) const noexcept {
    return std::hash<std::uint64_t>{}(id.value());
  }
};
}  // namespace std
