// Streaming statistics: Welford online mean/variance, min/max, and a simple
// fixed-bucket histogram with percentile queries. Used by the metrics module
// and the benchmark harnesses.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace s3 {

class OnlineStats {
 public:
  void add(double x);
  void merge(const OnlineStats& other);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const { return count_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;  // population variance
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Exact-percentile sample set: stores all samples; fine for per-experiment
// job counts (tens to thousands).
class SampleSet {
 public:
  void add(double x);
  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double percentile(double p) const;  // p in [0, 100]
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] const std::vector<double>& samples() const { return samples_; }

 private:
  void ensure_sorted() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

// Fixed-width-bucket histogram over [lo, hi); out-of-range samples clamp to
// the boundary buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);
  [[nodiscard]] std::size_t count() const { return total_; }
  [[nodiscard]] const std::vector<std::size_t>& buckets() const {
    return counts_;
  }
  [[nodiscard]] double bucket_lo(std::size_t i) const;
  [[nodiscard]] double bucket_hi(std::size_t i) const;

  // Renders a small ASCII sparkline-style dump for logs.
  [[nodiscard]] std::string to_string() const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace s3
