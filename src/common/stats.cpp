#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/status.h"

namespace s3 {

void OnlineStats::add(double x) {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  if (count_ == 1) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
}

void OnlineStats::merge(const OnlineStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(count_);
  const auto nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double OnlineStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

void SampleSet::add(double x) {
  samples_.push_back(x);
  sorted_ = false;
}

double SampleSet::mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (double s : samples_) sum += s;
  return sum / static_cast<double>(samples_.size());
}

void SampleSet::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SampleSet::percentile(double p) const {
  S3_CHECK(p >= 0.0 && p <= 100.0);
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  if (samples_.size() == 1) return samples_[0];
  // Linear interpolation between closest ranks.
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= samples_.size()) return samples_.back();
  return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
}

double SampleSet::min() const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  return samples_.front();
}

double SampleSet::max() const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  return samples_.back();
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0) {
  S3_CHECK(hi > lo);
  S3_CHECK(buckets > 0);
}

void Histogram::add(double x) {
  std::size_t idx;
  if (x < lo_) {
    idx = 0;
  } else if (x >= hi_) {
    idx = counts_.size() - 1;
  } else {
    idx = static_cast<std::size_t>((x - lo_) / width_);
    idx = std::min(idx, counts_.size() - 1);
  }
  ++counts_[idx];
  ++total_;
}

double Histogram::bucket_lo(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bucket_hi(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i + 1);
}

std::string Histogram::to_string() const {
  std::ostringstream os;
  std::size_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    os << '[' << bucket_lo(i) << ", " << bucket_hi(i) << ") ";
    const auto bar = counts_[i] * 40 / peak;
    for (std::size_t b = 0; b < bar; ++b) os << '#';
    os << ' ' << counts_[i] << '\n';
  }
  return os.str();
}

}  // namespace s3
