// View-lifetime validator: the runtime half of the dangling-view defense
// (the static half is tools/s3viewcheck, which derives the same invariants
// from source and traces view escapes through the project call graph).
//
// The engine's zero-copy path hands out std::string_views into KVBatch
// arenas. A view is valid only until its arena mutates: clear(), a
// reallocating append, prefault(), recycle through BatchArenaPool, a move,
// or destruction all leave previously-fetched views pointing at freed or
// rewritten bytes. In checked builds each arena owns a generation cell that
// is bumped on every such invalidation; KVBatch::key()/value() return a
// DebugView that remembers the generation it was born at and validates it on
// every dereference — including the implicit conversion at the
// Emitter::emit(string_view, string_view) boundary — aborting with a named
// witness instead of silently reading stale bytes.
//
// Generation cells come from a process-wide pool and carry values from one
// monotonic counter, so a recycled cell can never present a stale view's
// birth generation again; retired cells are parked for reuse (never freed),
// so a stale DebugView held past its batch's destruction dereferences live
// memory and aborts deterministically.
//
// Validation is active when S3_VIEW_CHECKS is 1: the build defines it for
// every CMAKE_BUILD_TYPE except Release (so the default tier-1 build and all
// sanitizer builds validate every dereference); without a build-system
// definition it follows NDEBUG. In Release, engine::ArenaView (declared in
// engine/kv_batch.h) aliases std::string_view, KVBatch carries no stamp
// member, and this header contributes nothing to the hot path.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string_view>

#ifndef S3_VIEW_CHECKS
#ifdef NDEBUG
#define S3_VIEW_CHECKS 0
#else
#define S3_VIEW_CHECKS 1
#endif
#endif

namespace s3 {

#if S3_VIEW_CHECKS

namespace view_checks {

// One generation cell per live arena. The value is written under the pool
// mutex or by the owning batch's (externally synchronized) mutations and
// read lock-free by every DebugView dereference; relaxed ordering suffices
// because batches already hand off between threads through shuffle/pool
// locks, and the check is a diagnostic, not a synchronization point.
struct GenCell {
  std::atomic<std::uint64_t> value{0};
};

// Pops a parked cell (or allocates one) and stamps it with a fresh
// generation. Thread-safe; the pool mutex ranks as a leaf so cells can be
// acquired while shuffle-bucket or arena-shard locks are held (batch moves
// inside those critical sections construct stamps).
GenCell* acquire_cell();

// Advances `cell` to a fresh generation: every DebugView born earlier is now
// stale. Returns the new generation.
std::uint64_t bump_cell(GenCell* cell);

// Bumps `cell` one last time and parks it for reuse. The memory stays live
// forever, so views that outlast their batch fail the generation compare
// instead of touching freed bytes.
void retire_cell(GenCell* cell);

inline std::uint64_t cell_value(const GenCell* cell) {
  return cell->value.load(std::memory_order_relaxed);
}

// Cells acquired and not yet retired (test isolation / leak assertions).
std::size_t live_cells_for_test();

}  // namespace view_checks

// RAII ownership of a generation cell, embedded in KVBatch. Copy/move
// semantics mirror what the operations do to the underlying arena bytes:
//
//   copy-construct  fresh cell (new arena buffer; source untouched)
//   copy-assign     bump own cell (own buffer rewritten; source untouched)
//   move-construct  fresh cell for self, bump source (its buffer was stolen
//                   — or, for SSO-small arenas, byte-copied — either way
//                   views into the source must not survive the move)
//   move-assign     bump own cell and the source's
//   destroy         retire (views must not outlive the batch)
class ArenaStamp {
 public:
  ArenaStamp() : cell_(view_checks::acquire_cell()) {}
  ~ArenaStamp() { view_checks::retire_cell(cell_); }

  ArenaStamp(const ArenaStamp&) : ArenaStamp() {}
  ArenaStamp& operator=(const ArenaStamp& other) {
    if (this != &other) bump();
    return *this;
  }
  ArenaStamp(ArenaStamp&& other) noexcept : ArenaStamp() { other.bump(); }
  ArenaStamp& operator=(ArenaStamp&& other) noexcept {
    bump();
    if (this != &other) other.bump();
    return *this;
  }

  void bump() { view_checks::bump_cell(cell_); }

  [[nodiscard]] const view_checks::GenCell* cell() const { return cell_; }
  [[nodiscard]] std::uint64_t generation() const {
    return view_checks::cell_value(cell_);
  }

 private:
  view_checks::GenCell* cell_;
};

// A std::string_view that knows which arena generation it was born at and
// refuses to be read after that generation passes. Converts implicitly to
// std::string_view (validating), so existing call sites — Emitter::emit,
// vector<string_view>::push_back, std::string construction, comparisons
// against literals — compile unchanged; in Release the engine::ArenaView
// alias bypasses this class entirely.
class DebugView {
 public:
  constexpr DebugView() noexcept = default;
  DebugView(std::string_view view, const view_checks::GenCell* cell,
            const char* source) noexcept
      : view_(view),
        cell_(cell),
        birth_(view_checks::cell_value(cell)),
        source_(source) {}

  // NOLINTNEXTLINE(google-explicit-constructor): drop-in for string_view.
  operator std::string_view() const {
    check();
    return view_;
  }

  [[nodiscard]] const char* data() const {
    check();
    return view_.data();
  }
  [[nodiscard]] std::size_t size() const {
    check();
    return view_.size();
  }
  [[nodiscard]] std::size_t length() const { return size(); }
  [[nodiscard]] bool empty() const {
    check();
    return view_.empty();
  }

  // True iff the backing arena mutated since this view was taken (the next
  // dereference would abort). Test hook — lets unit tests assert staleness
  // without dying.
  [[nodiscard]] bool stale() const noexcept {
    return cell_ != nullptr && view_checks::cell_value(cell_) != birth_;
  }
  [[nodiscard]] std::uint64_t birth_generation() const noexcept {
    return birth_;
  }

  friend bool operator==(const DebugView& a, const DebugView& b) {
    return sv(a) == sv(b);
  }
  friend bool operator!=(const DebugView& a, const DebugView& b) {
    return sv(a) != sv(b);
  }
  friend bool operator<(const DebugView& a, const DebugView& b) {
    return sv(a) < sv(b);
  }
  friend bool operator<=(const DebugView& a, const DebugView& b) {
    return sv(a) <= sv(b);
  }
  friend bool operator>(const DebugView& a, const DebugView& b) {
    return sv(a) > sv(b);
  }
  friend bool operator>=(const DebugView& a, const DebugView& b) {
    return sv(a) >= sv(b);
  }
  friend bool operator==(const DebugView& a, std::string_view b) {
    return sv(a) == b;
  }
  friend bool operator!=(const DebugView& a, std::string_view b) {
    return sv(a) != b;
  }
  friend bool operator<(const DebugView& a, std::string_view b) {
    return sv(a) < b;
  }
  friend bool operator>(const DebugView& a, std::string_view b) {
    return sv(a) > b;
  }
  friend bool operator==(std::string_view a, const DebugView& b) {
    return a == sv(b);
  }
  friend bool operator!=(std::string_view a, const DebugView& b) {
    return a != sv(b);
  }
  friend bool operator<(std::string_view a, const DebugView& b) {
    return a < sv(b);
  }
  friend bool operator>(std::string_view a, const DebugView& b) {
    return a > sv(b);
  }

  friend std::ostream& operator<<(std::ostream& os, const DebugView& v);

 private:
  static std::string_view sv(const DebugView& v) {
    v.check();
    return v.view_;
  }

  void check() const {
    if (stale()) abort_stale();
  }
  [[noreturn]] void abort_stale() const;

  std::string_view view_;
  const view_checks::GenCell* cell_ = nullptr;
  std::uint64_t birth_ = 0;
  const char* source_ = "view";
};

#endif  // S3_VIEW_CHECKS

}  // namespace s3
