// Clang Thread Safety Analysis support: attribute macros plus annotated
// mutex/guard wrappers. Under Clang with -Wthread-safety the compiler proves
// that every GUARDED_BY field is only touched with its mutex held and that
// REQUIRES contracts hold at each call site; under GCC the macros expand to
// nothing and the wrappers cost exactly a std::mutex/std::shared_mutex.
//
// Usage pattern (see shuffle.h, thread_pool.h, local_engine.h):
//
//   AnnotatedMutex mu_;
//   int state_ S3_GUARDED_BY(mu_);
//   void touch() { MutexLock lock(mu_); ++state_; }
//   void touch_locked() S3_REQUIRES(mu_);   // caller must hold mu_
//
// The macros mirror the LLVM documentation's canonical names with an S3_
// prefix so they cannot collide with other libraries' unprefixed spellings.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "common/lock_rank.h"

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define S3_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef S3_THREAD_ANNOTATION
#define S3_THREAD_ANNOTATION(x)  // no-op outside Clang TSA
#endif

#define S3_CAPABILITY(x) S3_THREAD_ANNOTATION(capability(x))
#define S3_SCOPED_CAPABILITY S3_THREAD_ANNOTATION(scoped_lockable)
#define S3_GUARDED_BY(x) S3_THREAD_ANNOTATION(guarded_by(x))
#define S3_PT_GUARDED_BY(x) S3_THREAD_ANNOTATION(pt_guarded_by(x))
#define S3_ACQUIRED_BEFORE(...) S3_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define S3_ACQUIRED_AFTER(...) S3_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define S3_REQUIRES(...) S3_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define S3_REQUIRES_SHARED(...) \
  S3_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define S3_ACQUIRE(...) S3_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define S3_ACQUIRE_SHARED(...) \
  S3_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define S3_RELEASE(...) S3_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define S3_RELEASE_SHARED(...) \
  S3_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define S3_RELEASE_GENERIC(...) \
  S3_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))
#define S3_TRY_ACQUIRE(...) \
  S3_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define S3_TRY_ACQUIRE_SHARED(...) \
  S3_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))
#define S3_EXCLUDES(...) S3_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define S3_ASSERT_CAPABILITY(x) S3_THREAD_ANNOTATION(assert_capability(x))
#define S3_ASSERT_SHARED_CAPABILITY(x) \
  S3_THREAD_ANNOTATION(assert_shared_capability(x))
#define S3_RETURN_CAPABILITY(x) S3_THREAD_ANNOTATION(lock_returned(x))
#define S3_NO_THREAD_SAFETY_ANALYSIS \
  S3_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace s3 {

class MutexLock;

// std::mutex with the capability attribute so fields can be GUARDED_BY it.
// Mutexes in src/ construct with an explicit LockRank from the hierarchy in
// lock_rank.h; debug/sanitizer builds then validate rank monotonicity on
// every acquisition. The default (kUnranked) skips validation — tests and
// fixtures only.
class S3_CAPABILITY("mutex") AnnotatedMutex {
 public:
  AnnotatedMutex() = default;
  explicit AnnotatedMutex(LockRank rank) : rank_(rank) {}
  AnnotatedMutex(const AnnotatedMutex&) = delete;
  AnnotatedMutex& operator=(const AnnotatedMutex&) = delete;

  void lock() S3_ACQUIRE() {
    // Validated before blocking, so an inversion aborts instead of
    // deadlocking.
    lock_rank::note_acquire(rank_, this);
    mu_.lock();
  }
  void unlock() S3_RELEASE() {
    mu_.unlock();
    lock_rank::note_release(rank_, this);
  }
  bool try_lock() S3_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    lock_rank::note_acquire(rank_, this);
    return true;
  }

  LockRank rank() const { return rank_; }

 private:
  friend class MutexLock;
  std::mutex mu_;
  LockRank rank_ = LockRank::kUnranked;
};

// std::shared_mutex with the capability attribute; writer side is exclusive,
// reader side is shared.
class S3_CAPABILITY("shared_mutex") AnnotatedSharedMutex {
 public:
  AnnotatedSharedMutex() = default;
  explicit AnnotatedSharedMutex(LockRank rank) : rank_(rank) {}
  AnnotatedSharedMutex(const AnnotatedSharedMutex&) = delete;
  AnnotatedSharedMutex& operator=(const AnnotatedSharedMutex&) = delete;

  void lock() S3_ACQUIRE() {
    lock_rank::note_acquire(rank_, this);
    mu_.lock();
  }
  void unlock() S3_RELEASE() {
    mu_.unlock();
    lock_rank::note_release(rank_, this);
  }
  // Reader and writer sides share one rank: the hierarchy orders mutexes,
  // not access modes, and readers can still deadlock against writers.
  void lock_shared() S3_ACQUIRE_SHARED() {
    lock_rank::note_acquire(rank_, this);
    mu_.lock_shared();
  }
  void unlock_shared() S3_RELEASE_SHARED() {
    mu_.unlock_shared();
    lock_rank::note_release(rank_, this);
  }

  LockRank rank() const { return rank_; }

 private:
  std::shared_mutex mu_;
  LockRank rank_ = LockRank::kUnranked;
};

// RAII exclusive guard over AnnotatedMutex. Exposes wait() so condition
// variables keep working under the annotated type (std::condition_variable
// needs the underlying std::unique_lock<std::mutex>).
class S3_SCOPED_CAPABILITY MutexLock {
 public:
  // Bypasses AnnotatedMutex::lock() (the cv needs the raw unique_lock), so
  // the rank bookkeeping is repeated here: note before blocking, release on
  // unwind.
  explicit MutexLock(AnnotatedMutex& mu) S3_ACQUIRE(mu)
      : mu_(&mu), lock_(mu.mu_, std::defer_lock) {
    lock_rank::note_acquire(mu_->rank_, mu_);
    lock_.lock();
  }
  ~MutexLock() S3_RELEASE() {
    lock_.unlock();
    lock_rank::note_release(mu_->rank_, mu_);
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  // Releases the mutex while blocked, reacquires before returning. Callers
  // re-check their predicate in a loop (spurious wakeups); TSA sees the lock
  // as continuously held, which matches the invariant at every point the
  // caller's code actually runs — so the rank frame also stays held across
  // the wait.
  void wait(std::condition_variable& cv) { cv.wait(lock_); }

  // Timed variant for periodic workers (the snapshot exporter's interval
  // loop): same release-while-parked contract, returns std::cv_status.
  template <typename Rep, typename Period>
  std::cv_status wait_for(std::condition_variable& cv,
                          const std::chrono::duration<Rep, Period>& timeout) {
    return cv.wait_for(lock_, timeout);
  }

 private:
  AnnotatedMutex* mu_;
  std::unique_lock<std::mutex> lock_;
};

// RAII exclusive (writer) guard over AnnotatedSharedMutex.
class S3_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(AnnotatedSharedMutex& mu) S3_ACQUIRE(mu)
      : mu_(&mu) {
    mu_->lock();
  }
  ~WriterMutexLock() S3_RELEASE() { mu_->unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  AnnotatedSharedMutex* mu_;
};

// RAII shared (reader) guard over AnnotatedSharedMutex.
class S3_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(AnnotatedSharedMutex& mu) S3_ACQUIRE_SHARED(mu)
      : mu_(&mu) {
    mu_->lock_shared();
  }
  ~ReaderMutexLock() S3_RELEASE_SHARED() { mu_->unlock_shared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  AnnotatedSharedMutex* mu_;
};

}  // namespace s3
