#include "common/flags.h"

#include <cstdlib>

#include "common/strings.h"

namespace s3 {

Flags Flags::parse(int argc, const char* const* argv) {
  Flags flags;
  if (argc > 0) flags.program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!starts_with(arg, "--")) {
      flags.positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flags.values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && !starts_with(argv[i + 1], "--")) {
      flags.values_[arg] = argv[++i];
    } else {
      flags.values_[arg] = "true";  // boolean switch
    }
  }
  return flags;
}

bool Flags::has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string Flags::get_string(const std::string& name,
                              const std::string& def) const {
  const auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

std::int64_t Flags::get_int(const std::string& name, std::int64_t def) const {
  const auto it = values_.find(name);
  return it == values_.end() ? def : std::strtoll(it->second.c_str(), nullptr, 10);
}

double Flags::get_double(const std::string& name, double def) const {
  const auto it = values_.find(name);
  return it == values_.end() ? def : std::strtod(it->second.c_str(), nullptr);
}

bool Flags::get_bool(const std::string& name, bool def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace s3
