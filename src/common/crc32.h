// CRC-32 (IEEE 802.3 polynomial, reflected) over arbitrary bytes. Used by
// the DFS BlockStore to checksum every block payload at write time and verify
// it on every read, so silent corruption surfaces as kDataLoss instead of
// wrong answers. Table-driven, one byte per step — plenty for the in-memory
// store, and dependency-free.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace s3 {

namespace internal {

constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1U) != 0 ? 0xedb88320U : 0U);
    }
    table[i] = crc;
  }
  return table;
}

inline constexpr std::array<std::uint32_t, 256> kCrc32Table =
    make_crc32_table();

}  // namespace internal

[[nodiscard]] constexpr std::uint32_t crc32(std::string_view data) {
  std::uint32_t crc = 0xffffffffU;
  for (const char c : data) {
    crc = (crc >> 8) ^
          internal::kCrc32Table[(crc ^ static_cast<unsigned char>(c)) & 0xffU];
  }
  return crc ^ 0xffffffffU;
}

static_assert(crc32("123456789") == 0xcbf43926U,
              "CRC-32 check value (IEEE) must match");

}  // namespace s3
