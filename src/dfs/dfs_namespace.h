// The NameNode analogue: owns file metadata (file -> ordered blocks) and
// block metadata (block -> size, replicas). Purely metadata; payload bytes
// live in BlockStore.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "common/types.h"
#include "dfs/block.h"

namespace s3::dfs {

struct FileInfo {
  FileId id;
  std::string name;
  ByteSize block_size;
  std::vector<BlockId> blocks;  // in file order

  [[nodiscard]] std::uint64_t num_blocks() const { return blocks.size(); }
};

class DfsNamespace {
 public:
  // Creates an empty file; blocks are appended via append_block().
  [[nodiscard]] StatusOr<FileId> create_file(std::string name,
                                             ByteSize block_size);

  // Appends a new block of the given size; returns its id. Replicas start
  // empty and are filled by a PlacementPolicy.
  [[nodiscard]] StatusOr<BlockId> append_block(FileId file, ByteSize size);

  [[nodiscard]] Status set_replicas(BlockId block,
                                    std::vector<NodeId> replicas);

  [[nodiscard]] bool has_file(FileId id) const;
  [[nodiscard]] StatusOr<FileId> lookup(const std::string& name) const;
  [[nodiscard]] const FileInfo& file(FileId id) const;
  [[nodiscard]] const BlockInfo& block(BlockId id) const;
  // Like block(), but returns nullptr instead of aborting on unknown ids.
  [[nodiscard]] const BlockInfo* find_block(BlockId id) const;
  [[nodiscard]] ByteSize file_size(FileId id) const;
  [[nodiscard]] std::size_t num_files() const { return files_.size(); }

 private:
  IdGenerator<FileId> file_ids_;
  IdGenerator<BlockId> block_ids_;
  std::unordered_map<FileId, FileInfo> files_;
  std::unordered_map<BlockId, BlockInfo> blocks_;
  std::unordered_map<std::string, FileId> by_name_;
};

}  // namespace s3::dfs
