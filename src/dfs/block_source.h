// BlockSource — read-side abstraction over block payloads. The execution
// engine only ever *reads* blocks, so it programs against this interface:
//
//  * BlockStore (block_store.h) — materialized, write-once payloads.
//  * GeneratedBlockSource       — payloads synthesized on demand from a
//    deterministic generator and dropped after use, so real-engine runs can
//    scan inputs far larger than memory (the generator is the dataset).
#pragma once

#include <functional>
#include <string>

#include "common/status.h"
#include "common/types.h"
#include "dfs/block_store.h"
#include "dfs/dfs_namespace.h"

namespace s3::dfs {

class BlockSource {
 public:
  virtual ~BlockSource() = default;

  // Returns the payload for a block, or NOT_FOUND.
  [[nodiscard]] virtual StatusOr<Payload> fetch(BlockId block) const = 0;
};

// Adapter: serve blocks from a materialized BlockStore.
class StoredBlocks final : public BlockSource {
 public:
  explicit StoredBlocks(const BlockStore& store) : store_(&store) {}
  [[nodiscard]] StatusOr<Payload> fetch(BlockId block) const override {
    return store_->get(block);
  }

 private:
  const BlockStore* store_;
};

// Synthesizes payloads on demand: the generator maps a block's index within
// its file to its bytes (deterministically). Thread-safe if the generator
// is. Nothing is cached — each fetch pays the generation cost, exactly like
// re-reading from disk.
class GeneratedBlockSource final : public BlockSource {
 public:
  using Generator = std::function<std::string(std::uint64_t block_index)>;

  // `ns` resolves BlockId -> (file, index); only blocks of `file` are
  // served.
  GeneratedBlockSource(const DfsNamespace& ns, FileId file,
                       Generator generator)
      : ns_(&ns), file_(file), generator_(std::move(generator)) {
    S3_CHECK(generator_ != nullptr);
  }

  [[nodiscard]] StatusOr<Payload> fetch(BlockId block) const override;

 private:
  const DfsNamespace* ns_;
  FileId file_;
  Generator generator_;
};

}  // namespace s3::dfs
