// Replica failover for the read path. ReplicaHealth is the shared registry
// of dead nodes and per-(block, node) corrupt replicas — the engine marks
// deaths there, fault plans pre-mark corruptions, and FailoverBlockSource
// consults it on every fetch. FailoverBlockSource walks a block's replicas
// in placement order, skipping dead or corrupt ones (journaling each
// failover decision), and returns kDataLoss naming the block only when every
// replica is unusable — the typed Status chain the failure model promises:
// dead primary -> kReplicaFailedOver, corrupt replica -> kBlockCorrupt +
// failover, all replicas gone -> kDataLoss.
//
// Payloads live once in the BlockStore regardless of replication factor, so
// "corruption of replica r" is virtual: tracked here, not by mutating bytes.
// Physical corruption (BlockStore CRC mismatch) affects every replica and is
// surfaced as kDataLoss by the store itself.
#pragma once

#include <atomic>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/types.h"
#include "dfs/block_source.h"
#include "dfs/dfs_namespace.h"

namespace s3::dfs {

// Thread-safe: worker threads consult it per fetch while the engine marks
// deaths from other workers.
class ReplicaHealth {
 public:
  // Idempotent; returns true if the node was newly marked.
  bool mark_node_dead(NodeId node) S3_EXCLUDES(mu_);
  [[nodiscard]] bool is_node_dead(NodeId node) const S3_EXCLUDES(mu_);
  [[nodiscard]] std::vector<NodeId> dead_nodes() const
      S3_EXCLUDES(mu_);  // sorted

  // Marks one replica of a block unreadable (bit rot on that node's copy).
  void mark_replica_corrupt(BlockId block, NodeId node) S3_EXCLUDES(mu_);
  [[nodiscard]] bool is_replica_corrupt(BlockId block, NodeId node) const
      S3_EXCLUDES(mu_);

  [[nodiscard]] std::size_t num_dead() const S3_EXCLUDES(mu_);
  [[nodiscard]] std::size_t num_corrupt_replicas() const S3_EXCLUDES(mu_);

 private:
  mutable AnnotatedMutex mu_{LockRank::kDfsReplicaHealth};
  std::unordered_set<NodeId> dead_ S3_GUARDED_BY(mu_);
  std::unordered_map<BlockId, std::unordered_set<NodeId>> corrupt_
      S3_GUARDED_BY(mu_);
};

// Decorates any BlockSource with replica failover. Blocks without replica
// metadata (replication 0 in tests) are served directly from the inner
// source — there is nothing to fail over across.
class FailoverBlockSource final : public BlockSource {
 public:
  // All three must outlive this source.
  FailoverBlockSource(const DfsNamespace& ns, const BlockSource& inner,
                      const ReplicaHealth& health);

  // Serves the block from the first usable replica; kDataLoss (naming the
  // block) when every replica is dead or corrupt, or when the payload itself
  // fails its checksum.
  [[nodiscard]] StatusOr<Payload> fetch(BlockId block) const override;

  // Reads that had to skip at least one replica (telemetry).
  [[nodiscard]] std::uint64_t failovers() const {
    return failovers_.load(std::memory_order_relaxed);
  }

 private:
  const DfsNamespace* ns_;
  const BlockSource* inner_;
  const ReplicaHealth* health_;
  mutable std::atomic<std::uint64_t> failovers_{0};
};

}  // namespace s3::dfs
