#include "dfs/reader.h"

#include <utility>

#include "common/status.h"

namespace s3::dfs {

LineRecordReader::LineRecordReader(Payload payload)
    : payload_(std::move(payload)) {
  S3_CHECK(payload_ != nullptr);
  remaining_ = *payload_;
}

bool LineRecordReader::next(Record& record) {
  if (remaining_.empty()) return false;
  const std::size_t nl = remaining_.find('\n');
  std::string_view line;
  std::size_t consumed;
  if (nl == std::string_view::npos) {
    line = remaining_;
    consumed = remaining_.size();
  } else {
    line = remaining_.substr(0, nl);
    consumed = nl + 1;
  }
  record.offset = offset_;
  record.data = line;
  offset_ += consumed;
  remaining_.remove_prefix(consumed);
  ++records_read_;
  return true;
}

void LineRecordReader::reset() {
  remaining_ = *payload_;
  offset_ = 0;
  records_read_ = 0;
}

SharedScanReader::SharedScanReader(Payload payload)
    : payload_(std::move(payload)) {
  S3_CHECK(payload_ != nullptr);
}

void SharedScanReader::add_consumer(RecordConsumer consumer) {
  S3_CHECK(consumer != nullptr);
  consumers_.push_back(std::move(consumer));
}

std::uint64_t SharedScanReader::scan() {
  LineRecordReader reader(payload_);
  Record record;
  std::uint64_t records = 0;
  while (reader.next(record)) {
    for (auto& consumer : consumers_) consumer(record);
    ++records;
  }
  bytes_physical_ += payload_->size();
  bytes_logical_ += payload_->size() * consumers_.size();
  return records;
}

std::vector<std::string_view> split_fields(std::string_view row, char sep) {
  std::vector<std::string_view> fields;
  std::size_t start = 0;
  while (start <= row.size()) {
    const std::size_t pos = row.find(sep, start);
    if (pos == std::string_view::npos) {
      fields.push_back(row.substr(start));
      break;
    }
    fields.push_back(row.substr(start, pos - start));
    start = pos + 1;
  }
  return fields;
}

}  // namespace s3::dfs
