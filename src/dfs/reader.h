// Record readers over block payloads. LineRecordReader iterates
// newline-delimited records without copying; SharedScanReader performs the
// S3/MRShare data-path primitive — one physical pass over a block feeding
// every registered consumer.
#pragma once

#include <functional>
#include <string_view>
#include <vector>

#include "common/types.h"
#include "dfs/block_store.h"

namespace s3::dfs {

struct Record {
  std::uint64_t offset = 0;   // byte offset of the record within the block
  std::string_view data;      // record bytes, excluding the trailing '\n'
};

class LineRecordReader {
 public:
  // The payload must outlive the reader (records view into it).
  explicit LineRecordReader(Payload payload);

  // Returns false at end of block; otherwise fills `record`.
  bool next(Record& record);

  void reset();

  [[nodiscard]] std::uint64_t records_read() const { return records_read_; }

 private:
  Payload payload_;
  std::string_view remaining_;
  std::uint64_t offset_ = 0;
  std::uint64_t records_read_ = 0;
};

using RecordConsumer = std::function<void(const Record&)>;

// One scan, many consumers: the core I/O-sharing primitive. Statistics
// distinguish bytes physically read (once) from bytes logically served
// (once per consumer), which is exactly the saving S3 exploits.
class SharedScanReader {
 public:
  explicit SharedScanReader(Payload payload);

  // Registers a consumer; must be called before scan().
  void add_consumer(RecordConsumer consumer);

  // Performs the single pass, invoking every consumer on every record.
  // Returns the number of records scanned.
  std::uint64_t scan();

  [[nodiscard]] std::size_t num_consumers() const { return consumers_.size(); }
  [[nodiscard]] std::uint64_t bytes_physical() const { return bytes_physical_; }
  [[nodiscard]] std::uint64_t bytes_logical() const { return bytes_logical_; }

 private:
  Payload payload_;
  std::vector<RecordConsumer> consumers_;
  std::uint64_t bytes_physical_ = 0;
  std::uint64_t bytes_logical_ = 0;
};

// Splits a '|'-delimited row (TPC-H text format) into fields. Views into the
// input; no copies.
[[nodiscard]] std::vector<std::string_view> split_fields(std::string_view row,
                                                         char sep = '|');

}  // namespace s3::dfs
