// In-memory payload storage for the simulated DFS (the DataNode analogue).
// Thread-safe: the real execution engine reads blocks from many worker
// threads concurrently. Payloads are immutable once written and shared via
// shared_ptr, so a shared scan hands the same buffer to every consumer.
//
// Every payload is checksummed (CRC-32) at put() and verified on every
// get(): silent corruption comes back as kDataLoss naming the block, never
// as wrong answers.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/types.h"

namespace s3::dfs {

using Payload = std::shared_ptr<const std::string>;

class BlockStore {
 public:
  // Stores the payload for a block and records its CRC-32. Rejects double
  // writes (blocks are immutable, like HDFS).
  [[nodiscard]] Status put(BlockId block, std::string payload)
      S3_EXCLUDES(mu_);

  // Returns the payload, or NOT_FOUND; DATA_LOSS if the payload no longer
  // matches the checksum recorded at write time.
  [[nodiscard]] StatusOr<Payload> get(BlockId block) const S3_EXCLUDES(mu_);

  // CRC-32 recorded when the block was written, or NOT_FOUND.
  [[nodiscard]] StatusOr<std::uint32_t> checksum(BlockId block) const
      S3_EXCLUDES(mu_);

  [[nodiscard]] bool contains(BlockId block) const S3_EXCLUDES(mu_);
  [[nodiscard]] std::size_t num_blocks() const S3_EXCLUDES(mu_);
  [[nodiscard]] std::uint64_t total_bytes() const S3_EXCLUDES(mu_);

  // Test/chaos hook: flips one payload byte without updating the stored
  // checksum, so the next get() detects the corruption. Never call outside
  // tests or a chaos harness.
  [[nodiscard]] Status corrupt_payload_for_test(BlockId block)
      S3_EXCLUDES(mu_);

 private:
  struct Stored {
    Payload payload;
    std::uint32_t crc = 0;
  };

  mutable AnnotatedMutex mu_{LockRank::kDfsBlockStore};
  std::unordered_map<BlockId, Stored> payloads_ S3_GUARDED_BY(mu_);
  std::uint64_t total_bytes_ S3_GUARDED_BY(mu_) = 0;
};

}  // namespace s3::dfs
