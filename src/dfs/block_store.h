// In-memory payload storage for the simulated DFS (the DataNode analogue).
// Thread-safe: the real execution engine reads blocks from many worker
// threads concurrently. Payloads are immutable once written and shared via
// shared_ptr, so a shared scan hands the same buffer to every consumer.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/types.h"

namespace s3::dfs {

using Payload = std::shared_ptr<const std::string>;

class BlockStore {
 public:
  // Stores the payload for a block. Rejects double writes (blocks are
  // immutable, like HDFS).
  [[nodiscard]] Status put(BlockId block, std::string payload)
      S3_EXCLUDES(mu_);

  // Returns the payload, or NOT_FOUND.
  [[nodiscard]] StatusOr<Payload> get(BlockId block) const S3_EXCLUDES(mu_);

  [[nodiscard]] bool contains(BlockId block) const S3_EXCLUDES(mu_);
  [[nodiscard]] std::size_t num_blocks() const S3_EXCLUDES(mu_);
  [[nodiscard]] std::uint64_t total_bytes() const S3_EXCLUDES(mu_);

 private:
  mutable AnnotatedMutex mu_;
  std::unordered_map<BlockId, Payload> payloads_ S3_GUARDED_BY(mu_);
  std::uint64_t total_bytes_ S3_GUARDED_BY(mu_) = 0;
};

}  // namespace s3::dfs
