// Replica placement policies. The paper runs with replication factor 1 on a
// 3-rack cluster; we implement the HDFS-style rack-aware policy as well so
// locality experiments are possible.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace s3::dfs {

// Static description of where nodes live, supplied by the cluster module
// (kept as plain IDs here to avoid a dependency cycle).
struct PlacementTopology {
  struct Node {
    NodeId node;
    RackId rack;
  };
  std::vector<Node> nodes;
};

class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;

  // Chooses `replication` distinct nodes for the block with the given index.
  virtual std::vector<NodeId> place(std::uint64_t block_index,
                                    int replication) = 0;
};

// Deterministic round-robin over nodes: block i's primary is node i % n,
// further replicas on the following nodes. With replication 1 this spreads
// a file evenly, matching the paper's "4 GB per node" layout.
class RoundRobinPlacement final : public PlacementPolicy {
 public:
  explicit RoundRobinPlacement(PlacementTopology topology);
  std::vector<NodeId> place(std::uint64_t block_index, int replication) override;

 private:
  PlacementTopology topology_;
};

// HDFS default-like: first replica on a pseudo-random node, second on a
// different rack, third on the same rack as the second.
class RackAwarePlacement final : public PlacementPolicy {
 public:
  RackAwarePlacement(PlacementTopology topology, std::uint64_t seed);
  std::vector<NodeId> place(std::uint64_t block_index, int replication) override;

 private:
  PlacementTopology topology_;
  Rng rng_;
};

}  // namespace s3::dfs
