#include "dfs/placement.h"

#include <algorithm>

#include "common/status.h"

namespace s3::dfs {

RoundRobinPlacement::RoundRobinPlacement(PlacementTopology topology)
    : topology_(std::move(topology)) {
  S3_CHECK(!topology_.nodes.empty());
}

std::vector<NodeId> RoundRobinPlacement::place(std::uint64_t block_index,
                                               int replication) {
  const std::size_t n = topology_.nodes.size();
  const int r = std::min<int>(replication, static_cast<int>(n));
  std::vector<NodeId> out;
  out.reserve(static_cast<std::size_t>(r));
  for (int i = 0; i < r; ++i) {
    out.push_back(
        topology_.nodes[(block_index + static_cast<std::uint64_t>(i)) % n]
            .node);
  }
  return out;
}

RackAwarePlacement::RackAwarePlacement(PlacementTopology topology,
                                       std::uint64_t seed)
    : topology_(std::move(topology)), rng_(seed) {
  S3_CHECK(!topology_.nodes.empty());
}

std::vector<NodeId> RackAwarePlacement::place(std::uint64_t /*block_index*/,
                                              int replication) {
  const std::size_t n = topology_.nodes.size();
  const int want = std::min<int>(replication, static_cast<int>(n));
  std::vector<NodeId> out;
  out.reserve(static_cast<std::size_t>(want));

  const auto& first = topology_.nodes[rng_.uniform_u64(n)];
  out.push_back(first.node);
  if (want == 1) return out;

  const auto taken = [&](NodeId id) {
    return std::find(out.begin(), out.end(), id) != out.end();
  };

  // Second replica: prefer a node on a different rack.
  std::vector<const PlacementTopology::Node*> off_rack;
  for (const auto& node : topology_.nodes) {
    if (node.rack != first.rack && !taken(node.node)) off_rack.push_back(&node);
  }
  const PlacementTopology::Node* second = nullptr;
  if (!off_rack.empty()) {
    second = off_rack[rng_.uniform_u64(off_rack.size())];
    out.push_back(second->node);
  }

  // Remaining replicas: same rack as the second if possible, else anywhere.
  while (static_cast<int>(out.size()) < want) {
    std::vector<const PlacementTopology::Node*> candidates;
    for (const auto& node : topology_.nodes) {
      if (taken(node.node)) continue;
      if (second == nullptr || node.rack == second->rack) {
        candidates.push_back(&node);
      }
    }
    if (candidates.empty()) {
      for (const auto& node : topology_.nodes) {
        if (!taken(node.node)) candidates.push_back(&node);
      }
    }
    if (candidates.empty()) break;  // fewer nodes than replicas requested
    out.push_back(candidates[rng_.uniform_u64(candidates.size())]->node);
  }
  return out;
}

}  // namespace s3::dfs
