#include "dfs/failover.h"

#include <algorithm>
#include <sstream>

#include "obs/journal.h"
#include "obs/registry.h"

namespace s3::dfs {

bool ReplicaHealth::mark_node_dead(NodeId node) {
  MutexLock lock(mu_);
  return dead_.insert(node).second;
}

bool ReplicaHealth::is_node_dead(NodeId node) const {
  MutexLock lock(mu_);
  return dead_.count(node) > 0;
}

std::vector<NodeId> ReplicaHealth::dead_nodes() const {
  MutexLock lock(mu_);
  std::vector<NodeId> out(dead_.begin(), dead_.end());
  std::sort(out.begin(), out.end());
  return out;
}

void ReplicaHealth::mark_replica_corrupt(BlockId block, NodeId node) {
  MutexLock lock(mu_);
  corrupt_[block].insert(node);
}

bool ReplicaHealth::is_replica_corrupt(BlockId block, NodeId node) const {
  MutexLock lock(mu_);
  const auto it = corrupt_.find(block);
  return it != corrupt_.end() && it->second.count(node) > 0;
}

std::size_t ReplicaHealth::num_dead() const {
  MutexLock lock(mu_);
  return dead_.size();
}

std::size_t ReplicaHealth::num_corrupt_replicas() const {
  MutexLock lock(mu_);
  std::size_t total = 0;
  for (const auto& [block, nodes] : corrupt_) total += nodes.size();
  return total;
}

FailoverBlockSource::FailoverBlockSource(const DfsNamespace& ns,
                                         const BlockSource& inner,
                                         const ReplicaHealth& health)
    : ns_(&ns), inner_(&inner), health_(&health) {}

StatusOr<Payload> FailoverBlockSource::fetch(BlockId block) const {
  static auto& failover_reads =
      obs::Registry::instance().counter("dfs.replica_failovers");
  const BlockInfo* info = ns_->find_block(block);
  if (info == nullptr || info->replicas.empty()) {
    // No replica metadata: nothing to fail over across, serve directly.
    return inner_->fetch(block);
  }
  auto& journal = obs::EventJournal::instance();
  std::size_t skipped_dead = 0;
  std::size_t skipped_corrupt = 0;
  for (const NodeId replica : info->replicas) {
    const bool dead = health_->is_node_dead(replica);
    const bool corrupt =
        !dead && health_->is_replica_corrupt(block, replica);
    if (dead || corrupt) {
      dead ? ++skipped_dead : ++skipped_corrupt;
      failovers_.fetch_add(1, std::memory_order_relaxed);
      failover_reads.add();
      if (journal.observed()) {
        obs::JournalEvent event;
        event.type = corrupt ? obs::JournalEventType::kBlockCorrupt
                             : obs::JournalEventType::kReplicaFailedOver;
        event.node = replica;
        event.detail = "block=" + std::to_string(block.value()) +
                       (corrupt ? ",cause=corrupt_replica"
                                : ",cause=dead_node");
        journal.record(std::move(event));
      }
      continue;
    }
    if (journal.observed() && (skipped_dead > 0 || skipped_corrupt > 0)) {
      obs::JournalEvent event;
      event.type = obs::JournalEventType::kReplicaFailedOver;
      event.node = replica;
      event.detail = "block=" + std::to_string(block.value()) +
                     ",served_by=" + std::to_string(replica.value()) +
                     ",skipped=" +
                     std::to_string(skipped_dead + skipped_corrupt);
      journal.record(std::move(event));
    }
    return inner_->fetch(block);
  }
  std::ostringstream os;
  os << "block " << block << ": all " << info->replicas.size()
     << " replicas unusable (" << skipped_dead << " on dead nodes, "
     << skipped_corrupt << " corrupt)";
  return Status::data_loss(os.str());
}

}  // namespace s3::dfs
