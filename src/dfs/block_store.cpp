#include "dfs/block_store.h"

#include "obs/registry.h"

namespace s3::dfs {

Status BlockStore::put(BlockId block, std::string payload) {
  static auto& writes = obs::Registry::instance().counter("dfs.block_writes");
  static auto& bytes = obs::Registry::instance().counter("dfs.bytes_written");
  MutexLock lock(mu_);
  if (payloads_.count(block) > 0) {
    return Status::already_exists("block payload already written");
  }
  total_bytes_ += payload.size();
  writes.add();
  bytes.add(payload.size());
  payloads_.emplace(block,
                    std::make_shared<const std::string>(std::move(payload)));
  return Status::ok();
}

StatusOr<Payload> BlockStore::get(BlockId block) const {
  static auto& reads = obs::Registry::instance().counter("dfs.block_reads");
  static auto& bytes = obs::Registry::instance().counter("dfs.bytes_read");
  MutexLock lock(mu_);
  const auto it = payloads_.find(block);
  if (it == payloads_.end()) {
    return Status::not_found("no payload for block");
  }
  reads.add();
  bytes.add((*it->second).size());
  return it->second;
}

bool BlockStore::contains(BlockId block) const {
  MutexLock lock(mu_);
  return payloads_.count(block) > 0;
}

std::size_t BlockStore::num_blocks() const {
  MutexLock lock(mu_);
  return payloads_.size();
}

std::uint64_t BlockStore::total_bytes() const {
  MutexLock lock(mu_);
  return total_bytes_;
}

}  // namespace s3::dfs
