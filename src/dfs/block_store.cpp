#include "dfs/block_store.h"

#include <sstream>

#include "common/crc32.h"
#include "obs/journal.h"
#include "obs/registry.h"

namespace s3::dfs {

Status BlockStore::put(BlockId block, std::string payload) {
  static auto& writes = obs::Registry::instance().counter("dfs.block_writes");
  static auto& bytes = obs::Registry::instance().counter("dfs.bytes_written");
  const std::uint32_t crc = crc32(payload);
  MutexLock lock(mu_);
  if (payloads_.count(block) > 0) {
    return Status::already_exists("block payload already written");
  }
  total_bytes_ += payload.size();
  writes.add();
  bytes.add(payload.size());
  payloads_.emplace(
      block,
      Stored{std::make_shared<const std::string>(std::move(payload)), crc});
  return Status::ok();
}

StatusOr<Payload> BlockStore::get(BlockId block) const {
  static auto& reads = obs::Registry::instance().counter("dfs.block_reads");
  static auto& bytes = obs::Registry::instance().counter("dfs.bytes_read");
  static auto& corrupt =
      obs::Registry::instance().counter("dfs.corrupt_reads");
  Payload payload;
  std::uint32_t expected = 0;
  {
    MutexLock lock(mu_);
    const auto it = payloads_.find(block);
    if (it == payloads_.end()) {
      return Status::not_found("no payload for block");
    }
    payload = it->second.payload;
    expected = it->second.crc;
  }
  // Verify outside the lock: the payload is immutable-by-contract and the
  // CRC pass is the expensive part of a read.
  if (crc32(*payload) != expected) {
    corrupt.add();
    auto& journal = obs::EventJournal::instance();
    if (journal.observed()) {
      obs::JournalEvent event;
      event.type = obs::JournalEventType::kBlockCorrupt;
      event.detail = "block=" + std::to_string(block.value()) +
                     ",cause=checksum_mismatch";
      journal.record(std::move(event));
    }
    std::ostringstream os;
    os << "block " << block << ": payload failed CRC-32 verification";
    return Status::data_loss(os.str());
  }
  reads.add();
  bytes.add(payload->size());
  return payload;
}

StatusOr<std::uint32_t> BlockStore::checksum(BlockId block) const {
  MutexLock lock(mu_);
  const auto it = payloads_.find(block);
  if (it == payloads_.end()) return Status::not_found("no payload for block");
  return it->second.crc;
}

bool BlockStore::contains(BlockId block) const {
  MutexLock lock(mu_);
  return payloads_.count(block) > 0;
}

std::size_t BlockStore::num_blocks() const {
  MutexLock lock(mu_);
  return payloads_.size();
}

std::uint64_t BlockStore::total_bytes() const {
  MutexLock lock(mu_);
  return total_bytes_;
}

Status BlockStore::corrupt_payload_for_test(BlockId block) {
  MutexLock lock(mu_);
  const auto it = payloads_.find(block);
  if (it == payloads_.end()) return Status::not_found("no payload for block");
  if (it->second.payload->empty()) {
    return Status::failed_precondition("cannot corrupt an empty payload");
  }
  std::string mutated = *it->second.payload;
  mutated[mutated.size() / 2] =
      static_cast<char>(mutated[mutated.size() / 2] ^ 0x40);
  it->second.payload = std::make_shared<const std::string>(std::move(mutated));
  return Status::ok();
}

}  // namespace s3::dfs
