// Block-level metadata for the simulated distributed file system. Mirrors
// HDFS: a file is an ordered chain of fixed-size blocks, each replicated on
// one or more data nodes.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/types.h"

namespace s3::dfs {

struct BlockInfo {
  BlockId id;
  FileId file;
  // Position of this block within its file (0-based).
  std::uint64_t index_in_file = 0;
  ByteSize size;
  // Data nodes holding a replica, in placement order (first = primary).
  std::vector<NodeId> replicas;
};

}  // namespace s3::dfs
