#include "dfs/dfs_namespace.h"

#include <utility>

namespace s3::dfs {

StatusOr<FileId> DfsNamespace::create_file(std::string name,
                                           ByteSize block_size) {
  if (by_name_.count(name) > 0) {
    return Status::already_exists("file '" + name + "' already exists");
  }
  if (block_size.count() == 0) {
    return Status::invalid_argument("block size must be > 0");
  }
  const FileId id = file_ids_.next();
  FileInfo info;
  info.id = id;
  info.name = name;
  info.block_size = block_size;
  by_name_.emplace(std::move(name), id);
  files_.emplace(id, std::move(info));
  return id;
}

StatusOr<BlockId> DfsNamespace::append_block(FileId file, ByteSize size) {
  const auto it = files_.find(file);
  if (it == files_.end()) {
    return Status::not_found("no such file id");
  }
  if (size.count() == 0 || it->second.block_size < size) {
    return Status::invalid_argument(
        "block payload must be in (0, block_size]");
  }
  const BlockId id = block_ids_.next();
  BlockInfo block;
  block.id = id;
  block.file = file;
  block.index_in_file = it->second.blocks.size();
  block.size = size;
  it->second.blocks.push_back(id);
  blocks_.emplace(id, std::move(block));
  return id;
}

Status DfsNamespace::set_replicas(BlockId block, std::vector<NodeId> replicas) {
  const auto it = blocks_.find(block);
  if (it == blocks_.end()) return Status::not_found("no such block id");
  if (replicas.empty()) {
    return Status::invalid_argument("need at least one replica");
  }
  it->second.replicas = std::move(replicas);
  return Status::ok();
}

bool DfsNamespace::has_file(FileId id) const { return files_.count(id) > 0; }

StatusOr<FileId> DfsNamespace::lookup(const std::string& name) const {
  const auto it = by_name_.find(name);
  if (it == by_name_.end()) return Status::not_found("no file named " + name);
  return it->second;
}

const FileInfo& DfsNamespace::file(FileId id) const {
  const auto it = files_.find(id);
  S3_CHECK_MSG(it != files_.end(), "unknown file " << id);
  return it->second;
}

const BlockInfo& DfsNamespace::block(BlockId id) const {
  const auto it = blocks_.find(id);
  S3_CHECK_MSG(it != blocks_.end(), "unknown block " << id);
  return it->second;
}

const BlockInfo* DfsNamespace::find_block(BlockId id) const {
  const auto it = blocks_.find(id);
  return it == blocks_.end() ? nullptr : &it->second;
}

ByteSize DfsNamespace::file_size(FileId id) const {
  const FileInfo& info = file(id);
  ByteSize total;
  for (BlockId b : info.blocks) total += block(b).size;
  return total;
}

}  // namespace s3::dfs
