#include "dfs/segment.h"

namespace s3::dfs {

SegmentMap::SegmentMap(const FileInfo& file, std::uint64_t blocks_per_segment)
    : file_(file.id), blocks_per_segment_(blocks_per_segment) {
  S3_CHECK_MSG(blocks_per_segment > 0, "blocks_per_segment must be > 0");
  S3_CHECK_MSG(!file.blocks.empty(), "cannot segment an empty file");
  total_blocks_ = file.blocks.size();
  const std::uint64_t k =
      (total_blocks_ + blocks_per_segment - 1) / blocks_per_segment;
  segments_.reserve(k);
  for (std::uint64_t s = 0; s < k; ++s) {
    SegmentInfo info;
    info.id = segment_ids_.next();
    info.index = s;
    const std::uint64_t begin = s * blocks_per_segment;
    const std::uint64_t end =
        std::min(begin + blocks_per_segment, total_blocks_);
    info.blocks.assign(file.blocks.begin() + static_cast<std::ptrdiff_t>(begin),
                       file.blocks.begin() + static_cast<std::ptrdiff_t>(end));
    segments_.push_back(std::move(info));
  }
}

const SegmentInfo& SegmentMap::segment(std::uint64_t index) const {
  S3_CHECK_MSG(index < segments_.size(),
               "segment index " << index << " out of range ("
                                << segments_.size() << " segments)");
  return segments_[index];
}

std::vector<std::uint64_t> SegmentMap::circular_order(
    std::uint64_t start) const {
  const std::uint64_t k = segments_.size();
  S3_CHECK(start < k);
  std::vector<std::uint64_t> order;
  order.reserve(k);
  for (std::uint64_t i = 0; i < k; ++i) order.push_back((start + i) % k);
  return order;
}

}  // namespace s3::dfs
