// Segments — the storage-level concept introduced by S3. A segment is a run
// of consecutive blocks of a file sized so that one segment is one
// cluster-wide wave of map tasks. SegmentMap is a pure view over a file's
// block list; the underlying storage is untouched (paper §IV-B).
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "dfs/dfs_namespace.h"

namespace s3::dfs {

// Circular arithmetic helpers shared by the scheduler and the tests.
[[nodiscard]] constexpr std::uint64_t circular_next(std::uint64_t i,
                                                    std::uint64_t k) {
  return (i + 1) % k;
}

// Number of steps to walk forward from `from` to reach `to` (0 if equal).
[[nodiscard]] constexpr std::uint64_t circular_distance(std::uint64_t from,
                                                        std::uint64_t to,
                                                        std::uint64_t k) {
  return (to + k - from) % k;
}

struct SegmentInfo {
  SegmentId id;
  std::uint64_t index = 0;  // 0-based position in the file's segment order
  std::vector<BlockId> blocks;
};

class SegmentMap {
 public:
  // Splits `file` into ceil(num_blocks / blocks_per_segment) segments. The
  // final segment may be short. blocks_per_segment is typically the number
  // of concurrent map slots in the cluster (paper §IV-B).
  SegmentMap(const FileInfo& file, std::uint64_t blocks_per_segment);

  [[nodiscard]] FileId file() const { return file_; }
  [[nodiscard]] std::uint64_t num_segments() const { return segments_.size(); }
  [[nodiscard]] std::uint64_t blocks_per_segment() const {
    return blocks_per_segment_;
  }
  [[nodiscard]] const SegmentInfo& segment(std::uint64_t index) const;

  // The circular scan order starting at `start`: start, start+1, ..., k-1,
  // 0, ..., start-1 (paper's S_j, S_{j+1}, ..., S_k, S_1, ..., S_{j-1}).
  [[nodiscard]] std::vector<std::uint64_t> circular_order(
      std::uint64_t start) const;

  [[nodiscard]] std::uint64_t total_blocks() const { return total_blocks_; }

 private:
  FileId file_;
  std::uint64_t blocks_per_segment_;
  std::uint64_t total_blocks_ = 0;
  std::vector<SegmentInfo> segments_;
  IdGenerator<SegmentId> segment_ids_;
};

}  // namespace s3::dfs
