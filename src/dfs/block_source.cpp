#include "dfs/block_source.h"

#include "dfs/dfs_namespace.h"

namespace s3::dfs {

StatusOr<Payload> GeneratedBlockSource::fetch(BlockId block) const {
  const BlockInfo* info = ns_->find_block(block);
  if (info == nullptr || info->file != file_) {
    return Status::not_found("block not served by this source");
  }
  return std::make_shared<const std::string>(
      generator_(info->index_in_file));
}

}  // namespace s3::dfs
