// Deterministic chaos harness: a FaultPlan is a seeded schedule of node
// deaths, replica corruptions, task hangs, transient errors and poison
// members, pluggable into the real engine via LocalEngineOptions
// (fault_injector + replica_health) and FailoverBlockSource.
//
// Every decision is a pure function of the seed and the attempt's stable
// identity (block / job / partition / attempt number) — never of thread
// interleaving — so a chaos run is reproducible bit-for-bit and its reduce
// output must be byte-identical to the fault-free run (the differential
// oracle in tests/chaos_test.cpp enforces this).
//
// The plan is constructed safe by design: the victim node and the corrupted
// replicas are chosen so that every block keeps at least one usable replica,
// i.e. the injected faults are always recoverable. (kDataLoss paths are
// exercised by dedicated tests, not by chaos plans.)
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "cluster/topology.h"
#include "common/types.h"
#include "dfs/dfs_namespace.h"
#include "dfs/failover.h"
#include "engine/fault.h"

namespace s3::chaos {

struct FaultPlanOptions {
  std::uint64_t seed = 1;
  // Kill one node (chosen from the seed) the first time the trigger block's
  // map task runs: the attempt is lost, the node is marked dead, and the
  // engine must re-dispatch + the read path must fail over.
  bool kill_node = false;
  // Number of blocks that get one replica pre-marked corrupt (bit rot);
  // reads must fail over past them.
  std::size_t corrupt_replicas = 0;
  // Probability that a task's first attempt fails transiently / hangs.
  // First attempts only, so max_task_attempts >= 2 always recovers.
  double transient_rate = 0.0;
  double hang_rate = 0.0;
  // Member whose own map (or reduce) fn fails on every attempt — the
  // quarantine path. Invalid = no poison.
  JobId poison_job;
  bool poison_in_reduce = false;
};

class FaultPlan {
 public:
  // Plans faults over the blocks of `files`. The namespace and topology are
  // only read during construction; the plan itself owns plain values and is
  // freely copyable into the injector.
  FaultPlan(const dfs::DfsNamespace& ns, const std::vector<FileId>& files,
            const cluster::Topology& topology, FaultPlanOptions options);

  // Pre-marks the planned replica corruptions. Call on the same
  // ReplicaHealth handed to the engine + FailoverBlockSource, before running.
  void arm(dfs::ReplicaHealth& health) const;

  // The engine-facing injector (a copy of this plan's decisions).
  [[nodiscard]] engine::FaultInjector injector() const;

  // Pure decision function (also used directly by tests).
  [[nodiscard]] engine::Fault decide(
      const engine::TaskAttempt& attempt) const;

  [[nodiscard]] const FaultPlanOptions& options() const { return options_; }
  // Invalid when kill_node is off or no safe victim exists.
  [[nodiscard]] NodeId victim() const { return victim_; }
  [[nodiscard]] BlockId death_trigger() const { return death_trigger_; }
  [[nodiscard]] const std::vector<std::pair<BlockId, NodeId>>& corruptions()
      const {
    return corruptions_;
  }
  [[nodiscard]] std::string describe() const;

 private:
  FaultPlanOptions options_;
  NodeId victim_;
  BlockId death_trigger_;
  std::vector<std::pair<BlockId, NodeId>> corruptions_;
};

}  // namespace s3::chaos
