#include "chaos/arrival_storm.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/rng.h"

namespace s3::chaos {

StormPlan::StormPlan(StormOptions options) : options_(options) {
  S3_CHECK(options_.tenants > 0);
  S3_CHECK(options_.jobs > 0);
  S3_CHECK(options_.duration > 0.0);
  S3_CHECK(options_.overload_factor >= 1.0);
  Rng rng(options_.seed);

  // Tenants. The aggregate token rate is sized so that at overload_factor 1
  // the planned arrivals are (just) sustainable, and at factor F the offered
  // load exceeds the buckets F-fold.
  const double offered_rate =
      static_cast<double>(options_.jobs) / options_.duration;
  const double per_tenant_rate =
      offered_rate / (static_cast<double>(options_.tenants) *
                      options_.overload_factor);
  for (std::size_t i = 0; i < options_.tenants; ++i) {
    StormTenant tenant;
    tenant.id = TenantId(i);
    tenant.name = "storm-" + std::to_string(i);
    tenant.quota.rate_jobs_per_sec = per_tenant_rate * rng.uniform(0.8, 1.6);
    tenant.quota.burst = 2.0 + static_cast<double>(rng.uniform_u64(5));
    tenant.quota.max_queued = 4 + static_cast<std::size_t>(rng.uniform_u64(8));
    tenant.quota.max_inflight =
        1 + static_cast<std::size_t>(rng.uniform_u64(4));
    // Weights from {1, 2, 4} so fairness ratios are easy to assert on.
    tenant.quota.weight = static_cast<double>(1u << rng.uniform_u64(3));
    tenants_.push_back(std::move(tenant));
  }

  // Arrivals: an exponential trickle compressed into
  // [0, duration / overload_factor], with every flood_every-th arrival
  // expanding into a same-instant single-tenant flood.
  const SimTime window = options_.duration / options_.overload_factor;
  const double mean_gap = window / static_cast<double>(options_.jobs);
  SimTime t = 0.0;
  std::uint64_t next_job = 0;
  std::size_t trickle_count = 0;
  while (arrivals_.size() < options_.jobs) {
    t += rng.exponential(mean_gap);
    const TenantId tenant(rng.uniform_u64(options_.tenants));
    const bool flood = options_.flood_every > 0 && options_.flood_size > 0 &&
                       ++trickle_count % options_.flood_every == 0;
    const std::size_t count = flood ? 1 + options_.flood_size : 1;
    for (std::size_t k = 0; k < count; ++k) {
      StormArrival arrival;
      arrival.tenant = tenant;
      arrival.job = JobId(next_job++);
      arrival.arrival = t;
      arrival.priority = static_cast<int>(rng.uniform_u64(3));
      // A third of the storm carries deadlines tight enough that the shedder
      // sees expired work under overload.
      if (rng.uniform() < 1.0 / 3.0) {
        arrival.deadline = t + rng.uniform(0.2, 2.0);
      }
      arrivals_.push_back(arrival);
    }
  }
  std::sort(arrivals_.begin(), arrivals_.end(),
            [](const StormArrival& a, const StormArrival& b) {
              if (a.arrival != b.arrival) return a.arrival < b.arrival;
              return a.job < b.job;
            });

  // Quota flaps: halve or double the token rate and resize the lane at
  // seeded instants. Changes keep every field valid (positive rate, nonzero
  // lane) so a flapped tenant is squeezed, never bricked.
  const SimTime span = horizon();
  for (std::size_t i = 0; i < options_.quota_flaps; ++i) {
    QuotaFlap flap;
    flap.at = rng.uniform(0.0, span);
    const std::size_t victim = rng.uniform_u64(options_.tenants);
    flap.tenant = tenants_[victim].id;
    service::TenantQuota quota = tenants_[victim].quota;
    quota.rate_jobs_per_sec *= rng.uniform() < 0.5 ? 0.5 : 2.0;
    quota.burst = std::max(1.0, quota.burst * (rng.uniform() < 0.5 ? 0.5 : 2.0));
    quota.max_queued =
        std::max<std::size_t>(1, rng.uniform() < 0.5 ? quota.max_queued / 2
                                                     : quota.max_queued * 2);
    flap.quota = quota;
    flaps_.push_back(flap);
  }
  std::sort(flaps_.begin(), flaps_.end(),
            [](const QuotaFlap& a, const QuotaFlap& b) { return a.at < b.at; });
}

SimTime StormPlan::horizon() const {
  return arrivals_.empty() ? 0.0 : arrivals_.back().arrival;
}

}  // namespace s3::chaos
