#include "chaos/fault_plan.h"

#include <algorithm>
#include <sstream>

#include "common/contracts.h"
#include "common/rng.h"

namespace s3::chaos {
namespace {

// Decision-stream tags, mixed into the hash so the fault classes draw from
// independent streams of the same seed.
constexpr std::uint64_t kTagHang = 0x68616e67ULL;       // "hang"
constexpr std::uint64_t kTagTransient = 0x7472616eULL;  // "tran"

// Stateless mix of (seed, tag, a, b) -> uniform u64. Deterministic in the
// attempt's identity, independent of call order.
std::uint64_t chaos_hash(std::uint64_t seed, std::uint64_t tag,
                         std::uint64_t a, std::uint64_t b) {
  std::uint64_t state = seed;
  state = splitmix64(state) ^ tag;
  state = splitmix64(state) ^ a;
  state = splitmix64(state) ^ b;
  return splitmix64(state);
}

double to_unit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

FaultPlan::FaultPlan(const dfs::DfsNamespace& ns,
                     const std::vector<FileId>& files,
                     const cluster::Topology& topology,
                     FaultPlanOptions options)
    : options_(options) {
  S3_CHECK(options.transient_rate >= 0.0 && options.transient_rate <= 1.0);
  S3_CHECK(options.hang_rate >= 0.0 && options.hang_rate <= 1.0);

  // Collect every replicated block the plan covers, in file/block order so
  // the construction is deterministic.
  std::vector<BlockId> blocks;
  for (const FileId file : files) {
    const dfs::FileInfo& info = ns.file(file);
    blocks.insert(blocks.end(), info.blocks.begin(), info.blocks.end());
  }

  Rng rng(options.seed);

  if (options.kill_node && topology.num_nodes() > 0 && !blocks.empty()) {
    // A victim is safe if every block keeps at least one other replica (a
    // block with no replica metadata is served directly and is unaffected).
    const auto safe_victim = [&](NodeId candidate) {
      for (const BlockId block : blocks) {
        const auto& replicas = ns.block(block).replicas;
        if (replicas.empty()) continue;
        const bool has_other =
            std::any_of(replicas.begin(), replicas.end(),
                        [&](NodeId n) { return n != candidate; });
        if (!has_other) return false;
      }
      return true;
    };
    const std::uint64_t first =
        rng.uniform_u64(static_cast<std::uint64_t>(topology.num_nodes()));
    for (std::uint64_t probe = 0; probe < topology.num_nodes(); ++probe) {
      std::uint64_t idx = first + probe;
      if (idx >= topology.num_nodes()) idx -= topology.num_nodes();
      const NodeId candidate(idx);
      if (safe_victim(candidate)) {
        victim_ = candidate;
        break;
      }
    }
    if (victim_.valid()) {
      death_trigger_ =
          blocks[rng.uniform_u64(static_cast<std::uint64_t>(blocks.size()))];
    }
  }

  if (options.corrupt_replicas > 0 && !blocks.empty()) {
    // Deterministic shuffle, then corrupt one replica per chosen block —
    // always leaving at least one replica that is neither the victim nor
    // corrupt, so the read stays recoverable.
    std::vector<BlockId> order = blocks;
    std::shuffle(order.begin(), order.end(), rng);
    for (const BlockId block : order) {
      if (corruptions_.size() >= options.corrupt_replicas) break;
      const auto& replicas = ns.block(block).replicas;
      if (replicas.empty()) continue;
      const auto usable = [&](NodeId n) { return n != victim_; };
      const auto usable_count = static_cast<std::size_t>(
          std::count_if(replicas.begin(), replicas.end(), usable));
      // Need one usable replica left after corrupting one.
      if (usable_count < 2) continue;
      // Corrupt the first usable replica (the primary where possible), so
      // the failover path is actually exercised.
      const auto it = std::find_if(replicas.begin(), replicas.end(), usable);
      corruptions_.emplace_back(block, *it);
    }
  }
}

void FaultPlan::arm(dfs::ReplicaHealth& health) const {
  for (const auto& [block, node] : corruptions_) {
    health.mark_replica_corrupt(block, node);
  }
}

engine::Fault FaultPlan::decide(const engine::TaskAttempt& attempt) const {
  // Poison dominates: the member's own fn fails on every attempt, so its
  // retries exhaust and the engine must quarantine it.
  if (options_.poison_job.valid()) {
    const bool fires = options_.poison_in_reduce
                           ? (!attempt.is_map &&
                              attempt.job == options_.poison_job)
                           : attempt.is_map;
    if (fires) {
      engine::Fault fault;
      fault.kind = engine::FaultKind::kPoison;
      fault.poison_job = options_.poison_job;
      fault.detail = "chaos_plan";
      return fault;
    }
  }
  if (attempt.is_map && attempt.attempt == 1 && victim_.valid() &&
      attempt.block == death_trigger_) {
    engine::Fault fault;
    fault.kind = engine::FaultKind::kNodeDeath;
    fault.dead_node = victim_;
    fault.detail = "chaos_plan";
    return fault;
  }
  if (attempt.attempt == 1) {
    const std::uint64_t key_a =
        attempt.is_map ? attempt.block.value() : attempt.job.value();
    const std::uint64_t key_b =
        attempt.is_map ? 0 : static_cast<std::uint64_t>(attempt.partition) + 1;
    if (options_.hang_rate > 0.0 &&
        to_unit(chaos_hash(options_.seed, kTagHang, key_a, key_b)) <
            options_.hang_rate) {
      engine::Fault fault;
      fault.kind = engine::FaultKind::kHang;
      fault.detail = "chaos_plan";
      return fault;
    }
    if (options_.transient_rate > 0.0 &&
        to_unit(chaos_hash(options_.seed, kTagTransient, key_a, key_b)) <
            options_.transient_rate) {
      engine::Fault fault;
      fault.kind = engine::FaultKind::kTransient;
      fault.detail = "chaos_plan";
      return fault;
    }
  }
  return {};
}

engine::FaultInjector FaultPlan::injector() const {
  return [plan = *this](const engine::TaskAttempt& attempt) {
    return plan.decide(attempt);
  };
}

std::string FaultPlan::describe() const {
  std::ostringstream os;
  os << "seed=" << options_.seed;
  if (victim_.valid()) {
    os << " kill=" << victim_ << "@" << death_trigger_;
  }
  if (!corruptions_.empty()) {
    os << " corrupt=" << corruptions_.size();
  }
  if (options_.transient_rate > 0.0) {
    os << " transient=" << options_.transient_rate;
  }
  if (options_.hang_rate > 0.0) os << " hang=" << options_.hang_rate;
  if (options_.poison_job.valid()) {
    os << " poison=" << options_.poison_job
       << (options_.poison_in_reduce ? "(reduce)" : "(map)");
  }
  return os.str();
}

}  // namespace s3::chaos
