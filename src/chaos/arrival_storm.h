// Deterministic arrival storms: a StormPlan is a seeded schedule of tenant
// quotas, job arrivals (steady trickle + same-instant bursts + single-tenant
// floods) and runtime quota flaps, pluggable into the SubmissionService
// front door. It is the admission-layer sibling of FaultPlan: where a
// FaultPlan stresses the recovery path, a StormPlan stresses the admission
// pipeline — token buckets running dry, lanes filling, the global bound
// engaging the shedder.
//
// Every arrival, quota and flap is a pure function of the seed — never of
// thread interleaving or wall time — so a storm run is reproducible and the
// differential oracle in tests/storm_test.cpp can demand byte-identical
// outputs for the admitted subset versus running those same jobs solo.
//
// The plan is overload-shaped by construction: `overload_factor` compresses
// the arrival window and scales tenant token rates down, so a factor of 1
// is a sustainable trickle and 10 is a sustained storm where rejections,
// retry hints and sheds are guaranteed to occur.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "service/admission.h"

namespace s3::chaos {

struct StormOptions {
  std::uint64_t seed = 1;
  std::size_t tenants = 4;
  // Total planned arrivals (floods included; never fewer than this).
  std::size_t jobs = 64;
  // Virtual arrival window. Arrivals land in [0, duration / overload_factor]
  // so the instantaneous rate scales with the overload factor.
  SimTime duration = 10.0;
  // >= 1. Scales offered load relative to the aggregate token rate: 1 is
  // sustainable, 10 means ten times more arrivals than the buckets admit.
  double overload_factor = 1.0;
  // Number of runtime quota changes (rate halving/doubling, lane resizing)
  // sprinkled over the window. 0 disables flapping.
  std::size_t quota_flaps = 0;
  // Every flood_every-th arrival expands into a same-instant flood of
  // flood_size extra submissions from one tenant. 0 disables floods.
  std::size_t flood_every = 8;
  std::size_t flood_size = 3;
};

struct StormTenant {
  TenantId id;
  std::string name;
  service::TenantQuota quota;
};

struct StormArrival {
  TenantId tenant;
  JobId job;
  SimTime arrival = 0.0;
  int priority = 0;               // 0..2, higher survives the shedder longer
  SimTime deadline = kTimeNever;  // some arrivals carry a shed-hint deadline
};

struct QuotaFlap {
  SimTime at = 0.0;
  TenantId tenant;
  service::TenantQuota quota;
};

class StormPlan {
 public:
  explicit StormPlan(StormOptions options);

  // Tenants with their initial quotas; register these before submitting.
  [[nodiscard]] const std::vector<StormTenant>& tenants() const {
    return tenants_;
  }
  // Arrivals sorted by (arrival, job id); job ids are dense from 0.
  [[nodiscard]] const std::vector<StormArrival>& arrivals() const {
    return arrivals_;
  }
  // Quota changes sorted by time; apply each one before submitting any
  // arrival at a later virtual time.
  [[nodiscard]] const std::vector<QuotaFlap>& flaps() const { return flaps_; }
  [[nodiscard]] const StormOptions& options() const { return options_; }

  // Virtual end of the arrival window (= last arrival time).
  [[nodiscard]] SimTime horizon() const;

 private:
  StormOptions options_;
  std::vector<StormTenant> tenants_;
  std::vector<StormArrival> arrivals_;
  std::vector<QuotaFlap> flaps_;
};

}  // namespace s3::chaos
