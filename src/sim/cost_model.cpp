#include "sim/cost_model.h"

#include <algorithm>

#include "common/status.h"
#include "sched/segment_planner.h"

namespace s3::sim {

WorkloadCost WorkloadCost::wordcount_normal() {
  WorkloadCost c;
  c.class_name = "wordcount-normal";
  c.map_cpu_seconds_per_block = 0.38;
  c.map_spill_seconds_per_block = 0.02;
  c.reduce_seconds_per_block = 0.0156;
  return c;
}

WorkloadCost WorkloadCost::wordcount_heavy() {
  // 10x map output and 200x reduce output (paper §V-B): the job is
  // output-heavy, not CPU-heavy — spill and reduce-side work grow by the
  // output factors so a single job runs ~1.5x slower end to end and sharing
  // saves proportionally less.
  WorkloadCost c;
  c.class_name = "wordcount-heavy";
  c.map_cpu_seconds_per_block = 0.6;
  c.map_spill_seconds_per_block = 0.2;   // 10x the normal map output
  c.reduce_seconds_per_block = 0.0546;   // amplified shuffle/reduce volume
  c.map_output_mb_per_block = 9.4;       // 10x the normal map output
  return c;
}

WorkloadCost WorkloadCost::tpch_selection() {
  // SQL selection over lineitem: I/O dominant map (parse + predicate),
  // small output (10% selectivity pass-through).
  WorkloadCost c;
  c.class_name = "tpch-selection";
  c.map_cpu_seconds_per_block = 0.35;
  c.map_spill_seconds_per_block = 0.01;
  c.reduce_seconds_per_block = 0.005;
  c.map_output_mb_per_block = 6.4;  // ~10% of each 64 MB block selected
  return c;
}

CostModelParams CostModelParams::paper(double block_mb) {
  CostModelParams p;
  p.block_mb = block_mb;
  return p;
}

CostModel::CostModel(CostModelParams params, const cluster::Topology& topology)
    : params_(params),
      topology_(&topology),
      network_(params.network, topology) {
  S3_CHECK(params.disk_mb_per_s > 0);
  S3_CHECK(params.block_mb > 0);
  S3_CHECK(params.num_reduce_tasks > 0);
}

BatchCost CostModel::batch_cost(
    const sched::Batch& batch,
    const std::unordered_map<JobId, WorkloadCost>& costs,
    const std::vector<NodeId>& excluded, const SpeedFn& speed) const {
  S3_CHECK(!batch.members.empty());
  S3_CHECK(batch.num_blocks > 0);

  const auto is_excluded = [&](NodeId node) {
    return std::find(excluded.begin(), excluded.end(), node) != excluded.end();
  };
  const auto speed_of = [&](NodeId node) {
    const double s =
        speed ? speed(node) : topology_->node(node).speed_factor;
    S3_CHECK(s > 0.0);
    return s;
  };

  // --- Map phase: list-schedule one task per block onto free slots. ---
  struct Slot {
    NodeId node;
    SimTime free_at = 0.0;
  };
  std::vector<Slot> slots;
  std::vector<double> usable_speeds;
  for (const auto& node : topology_->nodes()) {
    if (is_excluded(node.id)) continue;
    usable_speeds.push_back(speed_of(node.id));
    for (int s = 0; s < node.map_slots; ++s) {
      slots.push_back(Slot{node.id, 0.0});
    }
  }
  S3_CHECK_MSG(!slots.empty(), "no usable map slots in batch simulation");

  BatchCost out;
  out.launch = params_.batch_launch_overhead;
  out.map_tasks.reserve(batch.num_blocks);

  const double io_local = params_.io_seconds_per_block();
  // Off-replica tasks stream the block over the network (locality model):
  // pipelined remote-disk + network transfer, with a fetch/contention
  // penalty factor.
  const double io_remote =
      params_.model_locality
          ? std::max(io_local,
                     params_.block_mb / network_.blended_mb_per_s()) *
                params_.remote_read_penalty
          : io_local;
  const std::uint64_t num_nodes = topology_->nodes().size();

  // Per-block work parameters (sharing prefix, CPU/spill sums).
  struct PendingBlock {
    std::uint64_t offset = 0;
    int sharers = 0;
    double cpu_sum = 0.0;
    double spill_sum = 0.0;
    NodeId home;
    bool assigned = false;
  };
  std::vector<PendingBlock> pending;
  pending.reserve(batch.num_blocks);
  for (std::uint64_t b = 0; b < batch.num_blocks; ++b) {
    PendingBlock block;
    block.offset = b;
    for (const auto& m : batch.members) {
      if (m.blocks > b) {
        ++block.sharers;
        const auto it = costs.find(m.job);
        S3_CHECK_MSG(it != costs.end(), "no workload cost for " << m.job);
        block.cpu_sum += it->second.map_cpu_seconds_per_block;
        block.spill_sum += it->second.map_spill_seconds_per_block;
      }
    }
    if (block.sharers == 0) continue;  // block beyond every member's need
    // Replication factor 1, round-robin placement: the block's replica
    // lives on node (absolute index) mod n.
    block.home = NodeId(sched::wrap_index(batch.start_block + b, num_nodes));
    pending.push_back(block);
  }

  // Node-centric assignment (how Hadoop's JobTracker works): the next free
  // slot asks for a task; with locality enforcement it gets a block homed on
  // it if any remains, else the oldest pending block (a remote read).
  // Per-home queues + a global FIFO cursor keep selection O(1) amortized.
  std::unordered_map<NodeId, std::vector<std::size_t>> by_home;
  std::unordered_map<NodeId, std::size_t> home_cursor;
  for (std::size_t i = 0; i < pending.size(); ++i) {
    by_home[pending[i].home].push_back(i);
  }
  std::size_t global_cursor = 0;

  double map_task_sum = 0.0;
  std::size_t remaining = pending.size();
  while (remaining > 0) {
    auto slot = std::min_element(
        slots.begin(), slots.end(),
        [](const Slot& a, const Slot& b2) { return a.free_at < b2.free_at; });
    PendingBlock* chosen = nullptr;
    if (params_.model_locality && params_.enforce_locality) {
      const auto it = by_home.find(slot->node);
      if (it != by_home.end()) {
        std::size_t& cursor = home_cursor[slot->node];
        while (cursor < it->second.size()) {
          PendingBlock& candidate = pending[it->second[cursor]];
          ++cursor;
          if (!candidate.assigned) {
            chosen = &candidate;
            break;
          }
        }
      }
    }
    if (chosen == nullptr) {
      while (global_cursor < pending.size() &&
             pending[global_cursor].assigned) {
        ++global_cursor;
      }
      S3_CHECK(global_cursor < pending.size());
      chosen = &pending[global_cursor];
    }
    chosen->assigned = true;
    --remaining;

    const bool local =
        !params_.model_locality || chosen->home == slot->node;
    // CPU overlaps the streamed read until it saturates; spill does not.
    const double base =
        params_.map_task_overhead +
        std::max(local ? io_local : io_remote, chosen->cpu_sum) +
        chosen->spill_sum +
        params_.share_map_penalty * (chosen->sharers - 1);
    const double duration = base * speed_of(slot->node);
    MapTaskTrace trace;
    trace.node = slot->node;
    trace.start = slot->free_at;
    trace.duration = duration;
    trace.block_offset = chosen->offset;
    trace.sharers = chosen->sharers;
    trace.local = local;
    out.map_tasks.push_back(trace);
    slot->free_at += duration;
    map_task_sum += duration;
  }

  // Speculative execution (modeled, disabled by default as in §V-A): tasks
  // slower than threshold x the batch median get a backup attempt on the
  // earliest-free slot; the earlier finisher wins. Approximation: backups
  // are costed against post-schedule slot availability without cascading
  // re-assignment.
  if (params_.speculative_execution && out.map_tasks.size() >= 2) {
    std::vector<double> durations;
    durations.reserve(out.map_tasks.size());
    for (const auto& t : out.map_tasks) durations.push_back(t.duration);
    std::nth_element(durations.begin(),
                     durations.begin() + static_cast<std::ptrdiff_t>(
                                             durations.size() / 2),
                     durations.end());
    const double median = durations[durations.size() / 2];
    for (auto& task : out.map_tasks) {
      if (task.duration <= params_.speculative_threshold * median) continue;
      auto backup_slot = std::min_element(
          slots.begin(), slots.end(),
          [](const Slot& a, const Slot& b2) { return a.free_at < b2.free_at; });
      const double backup_start = std::max(backup_slot->free_at, task.start);
      // Backups read remotely (the replica's node is the slow one).
      const double backup_duration =
          (params_.map_task_overhead + io_remote) * speed_of(backup_slot->node) +
          (task.duration / speed_of(task.node) - params_.map_task_overhead -
           io_local) *
              speed_of(backup_slot->node);
      const double backup_end = backup_start + backup_duration;
      const double original_end = task.start + task.duration;
      if (backup_end < original_end) {
        task.speculated = true;
        task.duration = backup_end - task.start;
        backup_slot->free_at = backup_end;
        // The losing attempt is killed, releasing the straggler's slot.
        for (auto& s : slots) {
          if (s.node == task.node && s.free_at == original_end) {
            s.free_at = std::min(s.free_at, backup_end);
            break;
          }
        }
      }
    }
  }

  for (const auto& slot : slots) {
    out.map_phase = std::max(out.map_phase, slot.free_at);
  }
  for (const auto& task : out.map_tasks) {
    out.map_phase = std::max(out.map_phase, task.start + task.duration);
  }
  if (!out.map_tasks.empty()) {
    out.avg_map_task = map_task_sum / static_cast<double>(out.map_tasks.size());
  }

  // --- Reduce tail: dominated by the largest member's shuffle+reduce, and
  // lower-bounded by the rack-aware network model for shuffle-heavy loads.
  double max_member_tail = 0.0;
  double shuffle_mb = 0.0;
  for (const auto& m : batch.members) {
    const auto it = costs.find(m.job);
    S3_CHECK(it != costs.end());
    max_member_tail =
        std::max(max_member_tail, it->second.reduce_seconds_per_block *
                                      static_cast<double>(m.blocks));
    shuffle_mb +=
        it->second.map_output_mb_per_block * static_cast<double>(m.blocks);
  }
  const double share_factor =
      1.0 + params_.share_reduce_factor *
                static_cast<double>(batch.members.size() - 1);
  const double network_tail =
      network_.shuffle_seconds(shuffle_mb, params_.num_reduce_tasks);
  std::sort(usable_speeds.begin(), usable_speeds.end());
  const double median_speed =
      usable_speeds.empty() ? 1.0 : usable_speeds[usable_speeds.size() / 2];
  out.reduce_tail =
      std::max(max_member_tail * share_factor, network_tail) * median_speed;
  out.avg_reduce_task = out.reduce_tail;

  out.total = out.launch + out.map_phase + out.reduce_tail;
  return out;
}

}  // namespace s3::sim
