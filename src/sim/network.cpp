#include "sim/network.h"

#include <unordered_map>

#include "common/status.h"

namespace s3::sim {

NetworkModel::NetworkModel(NetworkParams params,
                           const cluster::Topology& topology)
    : params_(params) {
  S3_CHECK(params.intra_rack_mb_per_s > 0);
  S3_CHECK(params.cross_rack_mb_per_s > 0);
  std::unordered_map<RackId, std::size_t> rack_sizes;
  for (const auto& node : topology.nodes()) ++rack_sizes[node.rack];
  const auto n = static_cast<double>(topology.num_nodes());
  S3_CHECK(n > 0);
  double same_rack = 0.0;
  for (const auto& [rack, size] : rack_sizes) {
    const double fraction = static_cast<double>(size) / n;
    same_rack += fraction * fraction;
  }
  cross_rack_fraction_ = 1.0 - same_rack;
}

double NetworkModel::blended_mb_per_s() const {
  // Harmonic blend: a byte takes 1/bw seconds; mix by traffic fraction.
  const double f = cross_rack_fraction_;
  return 1.0 / (f / params_.cross_rack_mb_per_s +
                (1.0 - f) / params_.intra_rack_mb_per_s);
}

double NetworkModel::shuffle_seconds(double map_output_mb,
                                     int reducers) const {
  S3_CHECK(map_output_mb >= 0);
  S3_CHECK(reducers > 0);
  // Reducers pull in parallel; each fetches an equal share at the blended
  // per-flow bandwidth.
  const double per_reducer_mb = map_output_mb / reducers;
  return per_reducer_mb / blended_mb_per_s();
}

}  // namespace s3::sim
