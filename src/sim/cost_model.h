// Cost model for the discrete-event cluster simulator, calibrated against
// the paper's testbed (40 slaves, 1 Gbps, 64 MB blocks, wordcount ~240 s per
// job, Table I) and against Figure 3's combined-job overheads (+28.8 % map
// time and +23.5 % reduce time when 10 jobs share one scan).
//
// A batch (one merged (sub-)job) costs:
//   launch overhead                         — job setup + task scheduling
// + map phase                               — every block is one map task of
//     node_speed * (task_overhead + max(io_time, Σ_members cpu_j)
//                   + Σ_members spill_j + share_penalty * (members-1))
//     list-scheduled onto the non-excluded nodes' map slots. The max() term
//     models CPU work overlapping the streamed block read: sharing a scan is
//     nearly free until the members' combined CPU demand saturates the I/O
//     time (which is why combining 10 wordcount jobs costs only ~29 % more
//     map time in Figure 3). Spill (writing map output) cannot overlap the
//     read and is paid per member.
// + reduce tail                             — max_j (reduce_spb_j * blocks_j)
//     * (1 + share_reduce_factor * (members-1)), scaled by median node speed.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/topology.h"
#include "common/types.h"
#include "sched/scheduler.h"
#include "sim/network.h"

namespace s3::sim {

// Per-job-class processing costs (what kind of work the job does per block
// of input). Presets match the paper's three workloads.
struct WorkloadCost {
  std::string class_name = "wordcount-normal";
  // CPU seconds per block; overlaps the block read until saturation.
  double map_cpu_seconds_per_block = 0.38;
  // Map-output spill per block; serial (cannot overlap the read).
  double map_spill_seconds_per_block = 0.02;
  // Reduce-side work (shuffle + sort + reduce + write) per input block.
  double reduce_seconds_per_block = 0.0156;
  // Map output volume per input block (drives the network shuffle model).
  double map_output_mb_per_block = 0.94;  // Table I: 2.4 GB / 2,560 blocks

  // Paper presets.
  static WorkloadCost wordcount_normal();
  static WorkloadCost wordcount_heavy();
  static WorkloadCost tpch_selection();
};

struct CostModelParams {
  double disk_mb_per_s = 21.0;      // effective per-node scan bandwidth
  double block_mb = 64.0;           // HDFS block size
  double map_task_overhead = 0.5;   // fixed seconds per map task
  double share_map_penalty = 0.004; // extra map seconds per block per extra member
  double share_reduce_factor = 0.0261;  // reduce tail multiplier per extra member
  double batch_launch_overhead = 4.0;   // per merged (sub-)job submission
  double heartbeat_interval = 10.0;     // periodic slot checking interval
  int num_reduce_tasks = 30;            // paper §V-A
  NetworkParams network;                // rack-aware shuffle lower bound

  // Data locality (paper §V-A: replication factor 1; blocks are placed
  // round-robin, block i's replica lives on node i mod n). A map task
  // scheduled off its replica node streams the block over the network
  // instead of local disk. enforce_locality makes the list scheduler prefer
  // the replica's slot.
  bool model_locality = true;
  bool enforce_locality = true;
  // Remote streaming is pipelined (remote disk + network) but pays fetch
  // setup and fabric contention: effective read time is
  // max(disk, network) * this factor.
  double remote_read_penalty = 1.3;

  // Speculative execution (paper §V-A disables it; we model it so the
  // configuration choice can be studied). When a task's duration exceeds
  // speculative_threshold x the batch median, a backup attempt launches on
  // the fastest free slot and the earlier finisher wins.
  bool speculative_execution = false;
  double speculative_threshold = 2.0;

  [[nodiscard]] double io_seconds_per_block() const {
    return block_mb / disk_mb_per_s;
  }

  // Paper-calibrated preset (64 MB blocks unless overridden).
  static CostModelParams paper(double block_mb = 64.0);
};

struct MapTaskTrace {
  NodeId node;
  SimTime start = 0.0;       // relative to map phase start
  SimTime duration = 0.0;    // effective (speculative backup may shorten it)
  std::uint64_t block_offset = 0;  // offset within the batch's range
  int sharers = 1;
  bool local = true;         // ran on the block's replica node
  bool speculated = false;   // a backup attempt won
};

struct BatchCost {
  SimTime launch = 0.0;
  SimTime map_phase = 0.0;   // makespan of the map wave
  SimTime reduce_tail = 0.0;
  SimTime total = 0.0;
  double avg_map_task = 0.0;
  double avg_reduce_task = 0.0;
  std::vector<MapTaskTrace> map_tasks;
};

class CostModel {
 public:
  using SpeedFn = std::function<double(NodeId)>;  // current speed factor

  CostModel(CostModelParams params, const cluster::Topology& topology);

  [[nodiscard]] const CostModelParams& params() const { return params_; }

  // Simulates one batch. `costs` maps each member job to its workload class;
  // `excluded` nodes receive no tasks; `speed` gives the current per-node
  // slowdown factor (>= 1.0 nominal; nullptr = use topology's static value).
  [[nodiscard]] BatchCost batch_cost(
      const sched::Batch& batch,
      const std::unordered_map<JobId, WorkloadCost>& costs,
      const std::vector<NodeId>& excluded, const SpeedFn& speed) const;

  [[nodiscard]] const NetworkModel& network() const { return network_; }

 private:
  CostModelParams params_;
  const cluster::Topology* topology_;
  NetworkModel network_;
};

}  // namespace s3::sim
