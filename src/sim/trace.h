// Execution traces: one record per launched batch, convertible to CSV (for
// plotting Gantt-style timelines) and summarized per job class.
#pragma once

#include <string>
#include <vector>

#include "common/types.h"
#include "sim/cost_model.h"

namespace s3::sim {

struct BatchTrace {
  BatchId id;
  FileId file;
  SimTime launched = 0.0;
  SimTime finished = 0.0;
  std::uint64_t start_block = 0;
  std::uint64_t num_blocks = 0;
  std::size_t members = 0;
  std::size_t completed_jobs = 0;
  BatchCost cost;
};

// Renders "batch,launched,finished,blocks,members,map_phase,reduce_tail".
[[nodiscard]] std::string batches_to_csv(const std::vector<BatchTrace>& traces);

// Aggregate statistics across a run's batches.
struct TraceStats {
  std::size_t total_batches = 0;
  double total_busy = 0.0;        // Σ batch durations
  double total_launch = 0.0;      // Σ launch overheads
  double avg_members = 0.0;
  double avg_map_task = 0.0;      // weighted by task count
  double avg_reduce_task = 0.0;   // weighted by batch
  std::uint64_t map_tasks = 0;
};

[[nodiscard]] TraceStats summarize_traces(const std::vector<BatchTrace>& traces);

}  // namespace s3::sim
