#include "sim/sim_engine.h"

#include <algorithm>

#include "common/logging.h"

namespace s3::sim {

SimEngine::SimEngine(const cluster::Topology& topology,
                     const sched::FileCatalog& catalog, SimConfig config)
    : topology_(&topology),
      catalog_(&catalog),
      config_(std::move(config)),
      cost_model_(config_.cost, topology) {}

double SimEngine::speed_of(NodeId node) const {
  const auto it = current_speed_.find(node);
  if (it != current_speed_.end()) return it->second;
  return topology_->node(node).speed_factor;
}

void SimEngine::apply_speed_changes_until(SimTime now) {
  while (next_speed_change_ < sorted_changes_.size() &&
         sorted_changes_[next_speed_change_].at <= now) {
    const SpeedChange& change = sorted_changes_[next_speed_change_];
    current_speed_[change.node] = change.factor;
    ++next_speed_change_;
  }
}

void SimEngine::emit_progress_reports(sched::Scheduler& scheduler,
                                      const BatchTrace& trace, SimTime now) {
  if (!config_.enable_progress_reports) return;
  // Synthesize the periodic slot-checking observation made at
  // map_start + heartbeat_interval: a node still in its first task reports
  // fractional progress; finished-on-time nodes report completion.
  const SimTime map_start = trace.launched + trace.cost.launch;
  const double interval = config_.cost.heartbeat_interval;

  std::unordered_map<NodeId, double> first_task_duration;
  for (const auto& task : trace.cost.map_tasks) {
    if (task.start == 0.0) {  // first wave on that slot
      auto [it, inserted] = first_task_duration.emplace(task.node, task.duration);
      if (!inserted) it->second = std::max(it->second, task.duration);
    }
  }
  for (const auto& [node, duration] : first_task_duration) {
    cluster::ProgressReport report;
    report.node = node;
    report.task_start = map_start;
    if (duration <= interval) {
      // Finished within the check interval: report the completed task, so
      // the scheduler keeps an accurate healthy baseline for the median.
      report.progress = 1.0;
      report.report_time = map_start + duration;
    } else {
      report.progress = interval / duration;
      report.report_time = map_start + interval;
    }
    scheduler.on_progress(report, now);
  }
  // Nodes with no task this batch (excluded or idle) keep their previous
  // observation — a persistently slow node stays flagged until it runs a
  // task at normal speed again.
}

StatusOr<RunResult> SimEngine::run(sched::Scheduler& scheduler,
                                   std::vector<SimJob> jobs) {
  if (jobs.empty()) return Status::invalid_argument("no jobs to run");
  std::sort(jobs.begin(), jobs.end(), [](const SimJob& a, const SimJob& b) {
    if (a.arrival != b.arrival) return a.arrival < b.arrival;
    return a.id < b.id;
  });
  std::unordered_map<JobId, WorkloadCost> costs;
  for (const auto& job : jobs) {
    if (!catalog_->contains(job.file)) {
      return Status::invalid_argument("job references unknown file");
    }
    if (costs.count(job.id) > 0) {
      return Status::invalid_argument("duplicate job id in workload");
    }
    costs.emplace(job.id, job.cost);
  }

  // Reset per-run state.
  current_speed_.clear();
  next_speed_change_ = 0;
  sorted_changes_ = config_.speed_changes;
  std::sort(sorted_changes_.begin(), sorted_changes_.end(),
            [](const SpeedChange& a, const SpeedChange& b) {
              return a.at < b.at;
            });

  metrics::JobTimeline timeline;
  std::vector<BatchTrace> traces;

  const sched::ClusterStatus status{topology_->total_map_slots(),
                                    topology_->total_map_slots()};

  struct Running {
    sched::Batch batch;
    BatchCost cost;
    SimTime launched = 0.0;
    SimTime ends = 0.0;
  };
  std::optional<Running> running;

  SimTime now = 0.0;
  std::size_t next_arrival = 0;
  bool flushed = false;

  const auto deliver_arrivals = [&](SimTime t) {
    while (next_arrival < jobs.size() && jobs[next_arrival].arrival <= t) {
      const SimJob& job = jobs[next_arrival];
      timeline.on_submitted(job.id, job.arrival);
      scheduler.on_job_arrival(
          sched::JobArrival{job.id, job.file, job.priority}, job.arrival);
      ++next_arrival;
    }
  };

  // Safety bound: a sane run launches far fewer batches than
  // jobs * blocks (every batch makes progress for >= 1 job).
  std::uint64_t max_batches = 0;
  for (const auto& job : jobs) {
    max_batches += catalog_->num_blocks(job.file) + 2;
  }

  while (true) {
    if (running.has_value()) {
      // Next event: an arrival before the batch ends, or the batch end.
      if (next_arrival < jobs.size() &&
          jobs[next_arrival].arrival < running->ends) {
        now = jobs[next_arrival].arrival;
        deliver_arrivals(now);
        continue;
      }
      now = running->ends;
      deliver_arrivals(now);  // arrivals tied with the completion join now

      BatchTrace trace;
      trace.id = running->batch.id;
      trace.file = running->batch.file;
      trace.launched = running->launched;
      trace.finished = now;
      trace.start_block = running->batch.start_block;
      trace.num_blocks = running->batch.num_blocks;
      trace.members = running->batch.members.size();
      const auto completed = running->batch.completed_jobs();
      trace.completed_jobs = completed.size();
      trace.cost = running->cost;

      emit_progress_reports(scheduler, trace, now);
      scheduler.on_batch_complete(running->batch.id, now);
      for (const JobId job : completed) timeline.on_completed(job, now);
      traces.push_back(std::move(trace));
      running.reset();
      if (traces.size() > max_batches) {
        return Status::internal("batch count exceeded safety bound");
      }
      continue;
    }

    // Idle: try to launch.
    deliver_arrivals(now);
    apply_speed_changes_until(now);
    if (auto batch = scheduler.next_batch(now, status); batch.has_value()) {
      Running r;
      r.batch = std::move(*batch);
      r.cost = cost_model_.batch_cost(r.batch, costs, r.batch.excluded_nodes,
                                      [this](NodeId n) { return speed_of(n); });
      r.launched = now;
      r.ends = now + r.cost.total;
      for (const auto& member : r.batch.members) {
        timeline.on_first_started(member.job, now);
      }
      S3_LOG(kTrace, "sim") << "t=" << now << " launch " << r.batch.id
                            << " dur=" << r.cost.total;
      running = std::move(r);
      continue;
    }

    // Nothing launched. Advance to the next arrival or requested wakeup,
    // whichever comes first.
    const auto wake = scheduler.next_decision_time();
    if (next_arrival < jobs.size()) {
      SimTime next_time = jobs[next_arrival].arrival;
      if (wake.has_value() && *wake > now) {
        next_time = std::min(next_time, *wake);
      }
      now = next_time;
      continue;
    }
    if (scheduler.pending_jobs() == 0) break;  // all done

    // Jobs are pending but the scheduler is waiting. Honor a requested
    // wakeup; otherwise tell it no more jobs will come.
    if (wake.has_value() && *wake > now) {
      now = *wake;
      continue;
    }
    if (!flushed) {
      scheduler.flush(now);
      flushed = true;
      continue;
    }
    return Status::internal(
        "scheduler deadlock: pending jobs but no batch after flush");
  }

  if (!timeline.all_done()) {
    return Status::internal("run finished with incomplete jobs");
  }

  RunResult result;
  result.summary = metrics::summarize(timeline);
  result.jobs = timeline.records();
  result.trace_stats = summarize_traces(traces);
  result.batches = std::move(traces);
  result.finished_at = now;
  return result;
}

}  // namespace s3::sim
