#include "sim/trace.h"

#include <sstream>

#include "common/strings.h"

namespace s3::sim {

std::string batches_to_csv(const std::vector<BatchTrace>& traces) {
  std::ostringstream os;
  os << "batch,launched,finished,start_block,num_blocks,members,"
        "completed_jobs,launch,map_phase,reduce_tail\n";
  for (const auto& t : traces) {
    os << t.id.value() << ',' << format_double(t.launched, 3) << ','
       << format_double(t.finished, 3) << ',' << t.start_block << ','
       << t.num_blocks << ',' << t.members << ',' << t.completed_jobs << ','
       << format_double(t.cost.launch, 3) << ','
       << format_double(t.cost.map_phase, 3) << ','
       << format_double(t.cost.reduce_tail, 3) << '\n';
  }
  return os.str();
}

TraceStats summarize_traces(const std::vector<BatchTrace>& traces) {
  TraceStats s;
  s.total_batches = traces.size();
  if (traces.empty()) return s;
  double member_sum = 0.0;
  double map_task_weighted = 0.0;
  double reduce_sum = 0.0;
  for (const auto& t : traces) {
    s.total_busy += t.finished - t.launched;
    s.total_launch += t.cost.launch;
    member_sum += static_cast<double>(t.members);
    map_task_weighted +=
        t.cost.avg_map_task * static_cast<double>(t.cost.map_tasks.size());
    s.map_tasks += t.cost.map_tasks.size();
    reduce_sum += t.cost.avg_reduce_task;
  }
  s.avg_members = member_sum / static_cast<double>(traces.size());
  if (s.map_tasks > 0) {
    s.avg_map_task = map_task_weighted / static_cast<double>(s.map_tasks);
  }
  s.avg_reduce_task = reduce_sum / static_cast<double>(traces.size());
  return s;
}

}  // namespace s3::sim
