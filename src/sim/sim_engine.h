// SimEngine: drives any Scheduler against virtual time, reproducing the
// paper's 41-node experiments on a laptop. The simulation advances through
// three event kinds — job arrivals, batch completions, and scheduler wakeups
// (time-window batching) — with exactly one merged batch running at a time
// (a batch is sized to occupy the whole cluster; see scheduler.h).
//
// Failure/heterogeneity injection: SpeedChange events alter a node's speed
// factor mid-run; after every batch the engine synthesizes the periodic
// slot-checking progress reports (paper §IV-D-1) so S3 can exclude slow
// nodes from subsequent waves.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/topology.h"
#include "common/status.h"
#include "common/types.h"
#include "metrics/metrics.h"
#include "sched/file_catalog.h"
#include "sched/scheduler.h"
#include "sim/cost_model.h"
#include "sim/trace.h"

namespace s3::sim {

struct SimJob {
  JobId id;
  FileId file;
  SimTime arrival = 0.0;
  int priority = 0;
  WorkloadCost cost = WorkloadCost::wordcount_normal();
  std::string label;
};

struct SpeedChange {
  SimTime at = 0.0;
  NodeId node;
  double factor = 1.0;  // new speed factor (>= nominal 1.0 means slower)
};

struct SimConfig {
  CostModelParams cost = CostModelParams::paper();
  std::vector<SpeedChange> speed_changes;
  // Whether to forward synthesized progress reports to the scheduler
  // (disable to ablate S3's slot checking).
  bool enable_progress_reports = true;
};

struct RunResult {
  metrics::MetricsSummary summary;
  std::vector<metrics::JobRecord> jobs;   // per-job raw timeline
  std::vector<BatchTrace> batches;
  TraceStats trace_stats;
  SimTime finished_at = 0.0;
};

class SimEngine {
 public:
  SimEngine(const cluster::Topology& topology, const sched::FileCatalog& catalog,
            SimConfig config);

  // Runs the whole workload to completion under `scheduler`. Jobs need not
  // be sorted by arrival. The scheduler must start empty.
  [[nodiscard]] StatusOr<RunResult> run(sched::Scheduler& scheduler,
                          std::vector<SimJob> jobs);

 private:
  [[nodiscard]] double speed_of(NodeId node) const;
  void apply_speed_changes_until(SimTime now);
  void emit_progress_reports(sched::Scheduler& scheduler,
                             const BatchTrace& trace, SimTime now);

  const cluster::Topology* topology_;
  const sched::FileCatalog* catalog_;
  SimConfig config_;
  CostModel cost_model_;

  // Mutable per-run state.
  std::unordered_map<NodeId, double> current_speed_;
  std::size_t next_speed_change_ = 0;
  std::vector<SpeedChange> sorted_changes_;
};

}  // namespace s3::sim
