// Rack-aware shuffle network model. The paper's cluster is 3 racks on a
// 1 Gbps fabric; shuffle traffic that crosses racks contends for the
// (typically oversubscribed) core. This model estimates the time for the
// shuffle phase of a batch: every reduce task pulls its share of the map
// output, a topology-derived fraction of which crosses racks.
//
// The calibrated reduce tails in CostModel already *include* typical shuffle
// time; CostModel uses this model as a lower bound instead (max of the two),
// so it only binds for shuffle-heavy workloads — which is exactly when the
// paper's "heavy traffic of data shuffling within the network ... may offset
// the improvement gained by shared scan" (§V-B) caveat applies.
#pragma once

#include "cluster/topology.h"
#include "common/bytes.h"

namespace s3::sim {

struct NetworkParams {
  double intra_rack_mb_per_s = 110.0;  // ~1 Gbps node uplink
  double cross_rack_mb_per_s = 40.0;   // oversubscribed core, per flow
};

class NetworkModel {
 public:
  NetworkModel(NetworkParams params, const cluster::Topology& topology);

  [[nodiscard]] const NetworkParams& params() const { return params_; }

  // Probability that a (map node, reduce node) pair crosses racks when both
  // ends are uniformly placed: 1 - sum_r (size_r / n)^2.
  [[nodiscard]] double cross_rack_fraction() const {
    return cross_rack_fraction_;
  }

  // Effective per-flow bandwidth blending intra- and cross-rack transfers.
  [[nodiscard]] double blended_mb_per_s() const;

  // Time for `reducers` parallel reduce tasks to fetch `map_output_mb` of
  // map output spread uniformly over the cluster.
  [[nodiscard]] double shuffle_seconds(double map_output_mb,
                                       int reducers) const;

 private:
  NetworkParams params_;
  double cross_rack_fraction_ = 0.0;
};

}  // namespace s3::sim
