#include "service/submission_service.h"

#include <algorithm>
#include <utility>

#include "common/contracts.h"
#include "obs/clock.h"
#include "obs/registry.h"

namespace s3::service {
namespace {

std::string tenant_detail(TenantId tenant) {
  return "tenant=" + std::to_string(tenant.value());
}

}  // namespace

SubmissionService::SubmissionService(ServiceOptions options)
    : options_(options), registry_(options.backoff) {
  S3_CHECK_MSG(options_.global_queue_bound > 0,
               "global_queue_bound must be positive");
}

Status SubmissionService::register_tenant(TenantId tenant, std::string name,
                                          const TenantQuota& quota) {
  S3_RETURN_IF_ERROR(registry_.add_tenant(tenant, name, quota));
  MutexLock lock(queue_mu_);
  Lane lane(quota.max_queued);
  lane.max_inflight = quota.max_inflight;
  lane.weight = quota.weight;
  lane.name = std::move(name);
  lanes_.emplace(tenant, std::move(lane));
  return Status::ok();
}

Status SubmissionService::set_quota(TenantId tenant, const TenantQuota& quota,
                                    SimTime now) {
  S3_RETURN_IF_ERROR(registry_.set_quota(tenant, quota, now));
  MutexLock lock(queue_mu_);
  const auto it = lanes_.find(tenant);
  S3_CHECK_MSG(it != lanes_.end(), "lane missing for registered tenant");
  it->second.pending.set_capacity(quota.max_queued);
  it->second.max_inflight = quota.max_inflight;
  it->second.weight = quota.weight;
  return Status::ok();
}

void SubmissionService::journal_decision(obs::JournalEventType type,
                                         const Submission& s,
                                         const std::string& detail) const {
  auto& journal = obs::EventJournal::instance();
  if (!journal.observed()) return;
  obs::JournalEvent event;
  event.type = type;
  event.job = s.spec.id;
  event.sim_time = s.arrival;
  event.detail = detail;
  journal.record(std::move(event));
}

void SubmissionService::update_lane_gauges(const Lane& lane) const {
  auto& metrics = obs::Registry::instance();
  metrics.gauge("service.tenant." + lane.name + ".queued")
      .set(static_cast<double>(lane.pending.size()));
  metrics.gauge("service.tenant." + lane.name + ".inflight")
      .set(static_cast<double>(lane.inflight));
}

std::optional<SubmissionService::Victim> SubmissionService::pick_victim(
    SimTime now, int incoming_priority) const {
  // "More sheddable" is a total order — expired deadlines first, then lower
  // priority, then newest (highest seq) — so the choice is deterministic
  // regardless of lane iteration order.
  const auto more_sheddable = [](const Victim& a, const Victim& b) {
    if (a.expired != b.expired) return a.expired;
    if (a.priority != b.priority) return a.priority < b.priority;
    return a.seq > b.seq;
  };
  std::optional<Victim> best;
  for (const auto& [tenant, lane] : lanes_) {
    std::size_t index = 0;
    for (const QueuedSubmission& q : lane.pending) {
      Victim v;
      v.tenant = tenant;
      v.index = index++;
      v.priority = q.submission.priority;
      v.seq = q.seq;
      v.expired = q.submission.deadline < now;
      if (!best.has_value() || more_sheddable(v, *best)) best = v;
    }
  }
  if (!best.has_value()) return std::nullopt;
  // The incoming submission is the newest possible work: it survives only
  // if some queued victim is *strictly* worse — expired, or lower priority.
  if (!best->expired && best->priority >= incoming_priority) {
    return std::nullopt;
  }
  return best;
}

AdmissionDecision SubmissionService::submit(const Submission& submission) {
  const std::uint64_t start_ns = obs::now_ns();
  auto& metrics = obs::Registry::instance();
  submitted_.fetch_add(1, std::memory_order_relaxed);

  AdmissionDecision decision;
  const auto finish = [&](AdmissionDecision d) {
    metrics.histogram("service.admission_latency_ns")
        .observe(obs::now_ns() - start_ns);
    metrics.counter(std::string("service.") + admit_code_name(d.code)).add();
    return d;
  };

  if (!submission.spec.valid()) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    decision.code = AdmitCode::kRejected;
    decision.reason = "invalid job spec";
    journal_decision(obs::JournalEventType::kServiceRejected, submission,
                     tenant_detail(submission.tenant) + " reason=invalid_spec");
    return finish(decision);
  }

  const TenantRegistry::TokenResult token =
      registry_.try_consume(submission.tenant, submission.arrival);
  if (token.outcome == TenantRegistry::TokenResult::Outcome::kUnknown) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    decision.code = AdmitCode::kRejected;
    decision.reason = "unknown tenant";
    journal_decision(
        obs::JournalEventType::kServiceRejected, submission,
        tenant_detail(submission.tenant) + " reason=unknown_tenant");
    return finish(decision);
  }
  if (token.outcome == TenantRegistry::TokenResult::Outcome::kThrottled) {
    retry_after_.fetch_add(1, std::memory_order_relaxed);
    decision.code = AdmitCode::kRetryAfter;
    decision.retry_after = token.retry_after;
    decision.reason = "token bucket dry";
    journal_decision(
        obs::JournalEventType::kServiceRejected, submission,
        tenant_detail(submission.tenant) + " reason=rate_limited retry_after=" +
            std::to_string(token.retry_after));
    return finish(decision);
  }

  enum class Outcome { kAdmitted, kClosed, kLaneFull, kShedIncoming };
  Outcome outcome = Outcome::kAdmitted;
  std::optional<ShedRecord> victim_record;
  {
    MutexLock lock(queue_mu_);
    if (closed_) {
      outcome = Outcome::kClosed;
    } else {
      const auto lane_it = lanes_.find(submission.tenant);
      S3_CHECK_MSG(lane_it != lanes_.end(),
                   "lane missing for registered tenant");
      Lane& lane = lane_it->second;
      if (lane.pending.full()) {
        outcome = Outcome::kLaneFull;
      } else {
        if (total_queued_ >= options_.global_queue_bound) {
          // Deadline-aware overload shedding: only queued work is eligible;
          // dispatched shared scans always complete.
          const auto victim =
              pick_victim(submission.arrival, submission.priority);
          if (!victim.has_value()) {
            outcome = Outcome::kShedIncoming;
          } else {
            Lane& victim_lane = lanes_.at(victim->tenant);
            QueuedSubmission dropped =
                victim_lane.pending.erase_at(victim->index);
            --total_queued_;
            ShedRecord record;
            record.tenant = victim->tenant;
            record.job = dropped.submission.spec.id;
            record.at = submission.arrival;
            record.priority = victim->priority;
            record.deadline_expired = victim->expired;
            shed_log_.push_back(record);
            victim_record = record;
            update_lane_gauges(victim_lane);
          }
        }
        if (outcome == Outcome::kAdmitted) {
          QueuedSubmission queued;
          queued.submission = submission;
          queued.admitted_at = submission.arrival;
          queued.seq = next_seq_++;
          // A lane waking from empty joins the fair race at the current
          // virtual pass — idle time earns no credit.
          if (lane.pending.empty()) {
            lane.pass = std::max(lane.pass, global_pass_);
          }
          const bool pushed = lane.pending.push_back(std::move(queued));
          S3_CHECK_MSG(pushed, "lane rejected a push below its capacity");
          ++total_queued_;
          update_lane_gauges(lane);
          metrics.gauge("service.queued")
              .set(static_cast<double>(total_queued_));
        }
      }
    }
  }

  switch (outcome) {
    case Outcome::kClosed:
      rejected_.fetch_add(1, std::memory_order_relaxed);
      decision.code = AdmitCode::kRejected;
      decision.reason = "service closed";
      journal_decision(obs::JournalEventType::kServiceRejected, submission,
                       tenant_detail(submission.tenant) + " reason=closed");
      return finish(decision);
    case Outcome::kLaneFull: {
      retry_after_.fetch_add(1, std::memory_order_relaxed);
      decision.code = AdmitCode::kRetryAfter;
      decision.retry_after = registry_.penalize(submission.tenant);
      decision.reason = "tenant queue bound";
      journal_decision(
          obs::JournalEventType::kServiceRejected, submission,
          tenant_detail(submission.tenant) + " reason=lane_full retry_after=" +
              std::to_string(decision.retry_after));
      return finish(decision);
    }
    case Outcome::kShedIncoming: {
      shed_.fetch_add(1, std::memory_order_relaxed);
      decision.code = AdmitCode::kShed;
      decision.retry_after = registry_.penalize(submission.tenant);
      decision.reason = "overload: submission is the newest lowest-priority";
      journal_decision(
          obs::JournalEventType::kServiceShed, submission,
          tenant_detail(submission.tenant) + " victim=incoming retry_after=" +
              std::to_string(decision.retry_after));
      return finish(decision);
    }
    case Outcome::kAdmitted:
      break;
  }

  if (victim_record.has_value()) {
    shed_.fetch_add(1, std::memory_order_relaxed);
    obs::Registry::instance().counter("service.shed_victims").add();
    Submission victim_view;  // journal the victim, not the incoming job
    victim_view.tenant = victim_record->tenant;
    victim_view.spec.id = victim_record->job;
    victim_view.arrival = victim_record->at;
    journal_decision(
        obs::JournalEventType::kServiceShed, victim_view,
        tenant_detail(victim_record->tenant) +
            (victim_record->deadline_expired ? " reason=deadline_expired"
                                             : " reason=displaced"));
  }

  admitted_.fetch_add(1, std::memory_order_relaxed);
  decision.code = AdmitCode::kAdmitted;
  journal_decision(obs::JournalEventType::kServiceAdmitted, submission,
                   tenant_detail(submission.tenant) +
                       " priority=" + std::to_string(submission.priority));
  work_cv_.notify_one();
  return finish(decision);
}

std::vector<AdmittedJob> SubmissionService::poll_admitted(SimTime now,
                                                          std::size_t max_jobs) {
  std::vector<AdmittedJob> out;
  MutexLock lock(queue_mu_);
  while (max_jobs == 0 || out.size() < max_jobs) {
    Lane* best = nullptr;
    TenantId best_tenant;
    for (auto& [tenant, lane] : lanes_) {
      if (lane.pending.empty()) continue;
      if (lane.inflight >= lane.max_inflight) continue;
      if (lane.pending.front().submission.arrival > now) continue;
      if (best == nullptr || lane.pass < best->pass ||
          (lane.pass == best->pass && tenant < best_tenant)) {
        best = &lane;
        best_tenant = tenant;
      }
    }
    if (best == nullptr) break;
    QueuedSubmission queued = best->pending.pop_front();
    --total_queued_;
    ++best->inflight;
    best->pass += 1.0 / best->weight;
    global_pass_ = std::max(global_pass_, best->pass);
    inflight_jobs_.emplace(queued.submission.spec.id, best_tenant);
    dispatched_.fetch_add(1, std::memory_order_relaxed);
    update_lane_gauges(*best);
    AdmittedJob job;
    job.submission = std::move(queued.submission);
    job.admitted_at = queued.admitted_at;
    job.dispatched_at = now;
    out.push_back(std::move(job));
  }
  obs::Registry::instance().gauge("service.queued").set(
      static_cast<double>(total_queued_));
  return out;
}

void SubmissionService::on_job_finished(JobId job) {
  bool slot_freed = false;
  {
    MutexLock lock(queue_mu_);
    const auto it = inflight_jobs_.find(job);
    if (it == inflight_jobs_.end()) return;  // not service-managed
    const auto lane_it = lanes_.find(it->second);
    S3_CHECK_MSG(lane_it != lanes_.end(), "lane vanished for in-flight job");
    S3_CHECK_MSG(lane_it->second.inflight > 0,
                 "finishing a job for a lane with no in-flight work");
    --lane_it->second.inflight;
    inflight_jobs_.erase(it);
    finished_.fetch_add(1, std::memory_order_relaxed);
    update_lane_gauges(lane_it->second);
    slot_freed = true;
  }
  if (slot_freed) work_cv_.notify_all();
}

std::optional<SimTime> SubmissionService::next_ready_time(SimTime now) const {
  MutexLock lock(queue_mu_);
  std::optional<SimTime> best;
  for (const auto& [tenant, lane] : lanes_) {
    if (lane.pending.empty()) continue;
    if (lane.inflight >= lane.max_inflight) continue;
    const SimTime arrival = lane.pending.front().submission.arrival;
    const SimTime ready = arrival <= now ? now : arrival;
    if (!best.has_value() || ready < *best) best = ready;
  }
  return best;
}

bool SubmissionService::wait_for_work() {
  MutexLock lock(queue_mu_);
  while (!closed_ && total_queued_ == 0) lock.wait(work_cv_);
  return total_queued_ > 0;
}

void SubmissionService::close() {
  {
    MutexLock lock(queue_mu_);
    closed_ = true;
  }
  work_cv_.notify_all();
}

bool SubmissionService::closed() const {
  MutexLock lock(queue_mu_);
  return closed_;
}

bool SubmissionService::drained() const {
  MutexLock lock(queue_mu_);
  return total_queued_ == 0;
}

std::size_t SubmissionService::queued() const {
  MutexLock lock(queue_mu_);
  return total_queued_;
}

SubmissionService::Counts SubmissionService::counts() const {
  Counts counts;
  counts.submitted = submitted_.load(std::memory_order_relaxed);
  counts.admitted = admitted_.load(std::memory_order_relaxed);
  counts.rejected = rejected_.load(std::memory_order_relaxed);
  counts.retry_after = retry_after_.load(std::memory_order_relaxed);
  counts.shed = shed_.load(std::memory_order_relaxed);
  counts.dispatched = dispatched_.load(std::memory_order_relaxed);
  counts.finished = finished_.load(std::memory_order_relaxed);
  return counts;
}

std::vector<ShedRecord> SubmissionService::shed_log() const {
  MutexLock lock(queue_mu_);
  return shed_log_;
}

}  // namespace s3::service
