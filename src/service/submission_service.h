// SubmissionService: the resident `s3d` front door. Many threads call
// submit() continuously; every call returns a typed AdmissionDecision
// immediately (nothing in this layer ever sleeps or blocks on capacity):
//
//   submit(s) ── token bucket dry ───────────────→ kRetryAfter (backoff hint)
//            ── unknown tenant / closed ─────────→ kRejected
//            ── tenant lane full ────────────────→ kRetryAfter (backoff hint)
//            ── global bound hit ──┬─ a queued victim is strictly worse
//                                  │  (expired deadline, or lower priority)
//                                  │  → victim shed, submission admitted
//                                  └─ otherwise → kShed (newest lowest-
//                                     priority work is the submission itself)
//            ── otherwise ───────────────────────→ kAdmitted
//
// Admitted work sits in per-tenant bounded lanes until the driver's resident
// loop calls poll_admitted(now): a stride scheduler releases eligible heads
// in weighted-fair order, honoring each tenant's concurrency quota
// (max_inflight). Only queued work is ever shed — once dispatched, a job's
// shared scan always completes. All decisions are deterministic functions of
// virtual time and arrival order.
//
// Locking (ranks ascend; nothing here calls into sched/ under a lock):
// registry/tenant locks (kServiceRegistry/kServiceTenant) are consulted
// first and released before the single queue lock (kServiceQueue) that
// guards the lanes, the fair-share state, and the shed log.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/bounded_deque.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/types.h"
#include "obs/journal.h"
#include "service/admission.h"
#include "service/tenant_registry.h"

namespace s3::service {

struct ServiceOptions {
  // Global bound on queued (admitted-but-undispatched) submissions across
  // all tenants; the overload shedder engages at this line.
  std::size_t global_queue_bound = 64;
  TenantRegistry::BackoffPolicy backoff;
};

class SubmissionService {
 public:
  explicit SubmissionService(ServiceOptions options = {});
  SubmissionService(const SubmissionService&) = delete;
  SubmissionService& operator=(const SubmissionService&) = delete;

  // Tenant management (forwards to the registry and keeps the dispatch
  // lanes' quota mirrors in sync).
  [[nodiscard]] Status register_tenant(TenantId tenant, std::string name,
                                       const TenantQuota& quota);
  [[nodiscard]] Status set_quota(TenantId tenant, const TenantQuota& quota,
                                 SimTime now);
  [[nodiscard]] TenantRegistry& registry() { return registry_; }

  // Thread-safe, non-blocking admission. See the header comment for the
  // decision ladder.
  [[nodiscard]] AdmissionDecision submit(const Submission& submission);

  // Releases eligible queued work (arrival <= now, tenant below its
  // concurrency quota) in weighted-fair order. max_jobs == 0 means no cap.
  [[nodiscard]] std::vector<AdmittedJob> poll_admitted(SimTime now,
                                                       std::size_t max_jobs = 0);

  // Returns a dispatched job's concurrency slot to its tenant.
  void on_job_finished(JobId job);

  // Earliest virtual time at which poll_admitted could release more work,
  // given no further submissions or completions: `now` if something is
  // already eligible, the earliest queued arrival otherwise, nullopt when
  // nothing is queued or everything waits on a concurrency slot.
  [[nodiscard]] std::optional<SimTime> next_ready_time(SimTime now) const;

  // Blocks until queued work exists or the service closes. Returns true when
  // work is available, false when closed and drained — the resident driver's
  // parking primitive.
  [[nodiscard]] bool wait_for_work();

  void close();
  [[nodiscard]] bool closed() const;
  // No queued submissions (dispatched work may still be running).
  [[nodiscard]] bool drained() const;
  [[nodiscard]] std::size_t queued() const;

  struct Counts {
    std::uint64_t submitted = 0;
    std::uint64_t admitted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t retry_after = 0;
    std::uint64_t shed = 0;
    std::uint64_t dispatched = 0;
    std::uint64_t finished = 0;
  };
  [[nodiscard]] Counts counts() const;
  [[nodiscard]] std::vector<ShedRecord> shed_log() const;

 private:
  struct QueuedSubmission {
    Submission submission;
    SimTime admitted_at = 0.0;
    std::uint64_t seq = 0;
  };

  // Per-tenant dispatch lane. Quota fields mirror the registry (updated via
  // set_quota) so the dispatcher never reaches across the lock hierarchy.
  struct Lane {
    explicit Lane(std::size_t capacity) : pending(capacity) {}
    BoundedDeque<QueuedSubmission> pending;
    std::size_t inflight = 0;
    std::size_t max_inflight = 1;
    double weight = 1.0;
    double pass = 0.0;       // stride-scheduler virtual pass
    std::string name;
  };

  struct Victim {
    TenantId tenant;
    std::size_t index = 0;   // position in the lane's pending deque
    int priority = 0;
    std::uint64_t seq = 0;
    bool expired = false;
  };

  void journal_decision(obs::JournalEventType type, const Submission& s,
                        const std::string& detail) const;
  void update_lane_gauges(const Lane& lane) const S3_REQUIRES(queue_mu_);
  // Picks the queued submission the shedder would drop, judged at `now`
  // against the incoming (priority, seq). Returns nullopt when every queued
  // submission is preferable to the incoming one.
  [[nodiscard]] std::optional<Victim> pick_victim(SimTime now,
                                                  int incoming_priority) const
      S3_REQUIRES(queue_mu_);

  ServiceOptions options_;
  TenantRegistry registry_;

  mutable AnnotatedMutex queue_mu_{LockRank::kServiceQueue};
  std::condition_variable work_cv_;
  std::unordered_map<TenantId, Lane> lanes_ S3_GUARDED_BY(queue_mu_);
  std::unordered_map<JobId, TenantId> inflight_jobs_ S3_GUARDED_BY(queue_mu_);
  std::size_t total_queued_ S3_GUARDED_BY(queue_mu_) = 0;
  std::uint64_t next_seq_ S3_GUARDED_BY(queue_mu_) = 0;
  double global_pass_ S3_GUARDED_BY(queue_mu_) = 0.0;
  bool closed_ S3_GUARDED_BY(queue_mu_) = false;
  std::vector<ShedRecord> shed_log_ S3_GUARDED_BY(queue_mu_);

  // Monotonic decision tallies; atomics so the token-bucket rejection path
  // never has to take the queue lock just to count itself.
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> admitted_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> retry_after_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> dispatched_{0};
  std::atomic<std::uint64_t> finished_{0};
};

}  // namespace s3::service
