// TenantRegistry: the per-tenant half of the admission front door. Each
// tenant owns a deterministic token bucket (refilled from virtual submission
// times, never from a wall clock or a background thread) plus an exponential
// backoff ladder that turns consecutive rejections into growing retry hints.
//
// Locking: the registry map sits behind a shared mutex (kServiceRegistry);
// each tenant's mutable bucket state sits behind its own mutex
// (kServiceTenant, acquired under the registry's reader lock — ranks
// ascend). Nothing here ever calls into the scheduler or the queue layer, so
// the registry can be consulted from any submit thread without touching the
// service's queue lock.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/types.h"
#include "service/admission.h"

namespace s3::service {

class TenantRegistry {
 public:
  struct TokenResult {
    enum class Outcome {
      kUnknown,    // tenant never registered
      kOk,         // token consumed
      kThrottled,  // bucket dry; retry_after carries the modeled hint
    };
    Outcome outcome = Outcome::kUnknown;
    SimTime retry_after = 0.0;
    double tokens_left = 0.0;
    TenantQuota quota;  // snapshot, so callers avoid a second lookup
    std::string name;
  };

  // Modeled exponential backoff: base * 2^min(consecutive_rejects, cap).
  // Pure virtual-time math — nothing sleeps on it.
  struct BackoffPolicy {
    SimTime base = 0.05;
    std::uint32_t cap_exp = 6;
  };

  TenantRegistry() : TenantRegistry(BackoffPolicy{}) {}
  explicit TenantRegistry(BackoffPolicy backoff) : backoff_(backoff) {}
  TenantRegistry(const TenantRegistry&) = delete;
  TenantRegistry& operator=(const TenantRegistry&) = delete;

  // Registers a tenant with a full bucket. kAlreadyExists on duplicates.
  [[nodiscard]] Status add_tenant(TenantId tenant, std::string name,
                                  const TenantQuota& quota);

  // Re-points a tenant's quota at runtime (the chaos storms flap these).
  // The bucket is clamped to the new burst; journals kServiceQuotaChanged.
  [[nodiscard]] Status set_quota(TenantId tenant, const TenantQuota& quota,
                                 SimTime now);

  // Refills the tenant's bucket up to `now` and tries to consume one token.
  // kOk resets the backoff ladder; kThrottled climbs it and returns
  // max(time-until-one-token, modeled backoff) as the retry hint.
  [[nodiscard]] TokenResult try_consume(TenantId tenant, SimTime now);

  // Climbs the backoff ladder without touching the bucket — used when a
  // submission passes the token bucket but bounces off a queue bound.
  [[nodiscard]] SimTime penalize(TenantId tenant);

  [[nodiscard]] StatusOr<TenantQuota> quota(TenantId tenant) const;
  [[nodiscard]] StatusOr<std::string> tenant_name(TenantId tenant) const;
  [[nodiscard]] std::vector<TenantId> tenants() const;

 private:
  struct TenantState {
    TenantId id;
    std::string name;
    mutable AnnotatedMutex mu{LockRank::kServiceTenant};
    TenantQuota quota S3_GUARDED_BY(mu);
    double tokens S3_GUARDED_BY(mu) = 0.0;
    SimTime last_refill S3_GUARDED_BY(mu) = 0.0;
    std::uint32_t consecutive_rejects S3_GUARDED_BY(mu) = 0;
  };

  [[nodiscard]] const TenantState* find(TenantId tenant) const
      S3_REQUIRES_SHARED(mu_);
  [[nodiscard]] TenantState* find(TenantId tenant) S3_REQUIRES_SHARED(mu_);
  [[nodiscard]] SimTime backoff_locked(const TenantState& state) const
      S3_REQUIRES(state.mu);

  BackoffPolicy backoff_;
  mutable AnnotatedSharedMutex mu_{LockRank::kServiceRegistry};
  std::unordered_map<TenantId, std::unique_ptr<TenantState>> tenants_
      S3_GUARDED_BY(mu_);
};

}  // namespace s3::service
