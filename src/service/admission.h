// Admission vocabulary for the resident submission service (the `s3d` front
// end): tenant quotas, submissions, and the typed decisions the service
// returns instead of queueing without bound. DESIGN.md §17 documents the
// admission/overload model; every decision here is a deterministic function
// of virtual time (SimTime), so storm tests replay bit-for-bit.
#pragma once

#include <string>

#include "common/types.h"
#include "engine/job.h"

namespace s3::service {

// Per-tenant admission quota. Rates are in jobs per virtual second; the
// token bucket refills deterministically from submission arrival times (no
// wall clock, no background refill thread).
struct TenantQuota {
  double rate_jobs_per_sec = 8.0;  // token-bucket refill rate
  double burst = 4.0;              // token-bucket depth
  std::size_t max_queued = 8;      // bound on this tenant's admission lane
  std::size_t max_inflight = 4;    // concurrency quota (dispatched, unfinished)
  double weight = 1.0;             // weighted-fair share (stride scheduling)
};

// One job submission as a tenant hands it to the service.
struct Submission {
  TenantId tenant;
  engine::JobSpec spec;
  SimTime arrival = 0.0;           // virtual submission time
  int priority = 0;                // higher = preferred (JQM membership caps)
  SimTime deadline = kTimeNever;   // virtual completion deadline (shed hint)
};

enum class AdmitCode {
  kAdmitted,    // entered the bounded admission pipeline
  kRejected,    // permanent: unknown tenant, closed service, invalid spec
  kRetryAfter,  // transient: rate/queue bound; retry_after carries the hint
  kShed,        // dropped by the overload shedder (newest lowest-priority)
};

[[nodiscard]] constexpr const char* admit_code_name(AdmitCode code) {
  switch (code) {
    case AdmitCode::kAdmitted:
      return "admitted";
    case AdmitCode::kRejected:
      return "rejected";
    case AdmitCode::kRetryAfter:
      return "retry_after";
    case AdmitCode::kShed:
      return "shed";
  }
  return "unknown";
}

// The typed result of submit(). retry_after is a *modeled* exponential
// backoff hint in virtual seconds — the service never sleeps; callers decide
// when to come back.
struct AdmissionDecision {
  AdmitCode code = AdmitCode::kRejected;
  SimTime retry_after = 0.0;
  std::string reason;

  [[nodiscard]] bool admitted() const { return code == AdmitCode::kAdmitted; }
};

// A submission the weighted-fair dispatcher released to the driver.
struct AdmittedJob {
  Submission submission;
  SimTime admitted_at = 0.0;   // when it entered the pipeline
  SimTime dispatched_at = 0.0; // when poll_admitted released it
};

// One shedding decision, kept for the audit log and the chaos oracles.
struct ShedRecord {
  TenantId tenant;
  JobId job;
  SimTime at = 0.0;
  int priority = 0;
  bool deadline_expired = false;
};

}  // namespace s3::service
