#include "service/tenant_registry.h"

#include <algorithm>
#include <cmath>

#include "obs/journal.h"
#include "obs/registry.h"

namespace s3::service {
namespace {

std::string quota_detail(TenantId tenant, const TenantQuota& quota) {
  return "tenant=" + std::to_string(tenant.value()) +
         " rate=" + std::to_string(quota.rate_jobs_per_sec) +
         " burst=" + std::to_string(quota.burst) +
         " max_queued=" + std::to_string(quota.max_queued) +
         " max_inflight=" + std::to_string(quota.max_inflight) +
         " weight=" + std::to_string(quota.weight);
}

}  // namespace

Status TenantRegistry::add_tenant(TenantId tenant, std::string name,
                                  const TenantQuota& quota) {
  if (!tenant.valid()) {
    return Status::invalid_argument("invalid tenant id");
  }
  if (quota.rate_jobs_per_sec <= 0.0 || quota.burst < 1.0 ||
      quota.max_queued == 0 || quota.max_inflight == 0 ||
      quota.weight <= 0.0) {
    return Status::invalid_argument("malformed tenant quota");
  }
  auto state = std::make_unique<TenantState>();
  state->id = tenant;
  state->name = std::move(name);
  {
    // Initialization happens before the state is published, so the tenant
    // mutex is not needed yet; TSA still wants the guard.
    MutexLock lock(state->mu);
    state->quota = quota;
    state->tokens = quota.burst;  // start full: a fresh tenant can burst
  }
  WriterMutexLock lock(mu_);
  if (tenants_.find(tenant) != tenants_.end()) {
    return Status::already_exists("tenant already registered");
  }
  tenants_.emplace(tenant, std::move(state));
  return Status::ok();
}

Status TenantRegistry::set_quota(TenantId tenant, const TenantQuota& quota,
                                 SimTime now) {
  if (quota.rate_jobs_per_sec <= 0.0 || quota.burst < 1.0 ||
      quota.max_queued == 0 || quota.max_inflight == 0 ||
      quota.weight <= 0.0) {
    return Status::invalid_argument("malformed tenant quota");
  }
  {
    ReaderMutexLock lock(mu_);
    TenantState* state = find(tenant);
    if (state == nullptr) return Status::not_found("unknown tenant");
    MutexLock tenant_lock(state->mu);
    state->quota = quota;
    state->tokens = std::min(state->tokens, quota.burst);
  }
  auto& journal = obs::EventJournal::instance();
  if (journal.observed()) {
    obs::JournalEvent event;
    event.type = obs::JournalEventType::kServiceQuotaChanged;
    event.sim_time = now;
    event.detail = quota_detail(tenant, quota);
    journal.record(std::move(event));
  }
  return Status::ok();
}

const TenantRegistry::TenantState* TenantRegistry::find(TenantId tenant) const {
  const auto it = tenants_.find(tenant);
  return it == tenants_.end() ? nullptr : it->second.get();
}

TenantRegistry::TenantState* TenantRegistry::find(TenantId tenant) {
  const auto it = tenants_.find(tenant);
  return it == tenants_.end() ? nullptr : it->second.get();
}

SimTime TenantRegistry::backoff_locked(const TenantState& state) const {
  const std::uint32_t exponent =
      std::min(state.consecutive_rejects, backoff_.cap_exp);
  return backoff_.base * static_cast<SimTime>(1ULL << exponent);
}

TenantRegistry::TokenResult TenantRegistry::try_consume(TenantId tenant,
                                                        SimTime now) {
  TokenResult result;
  ReaderMutexLock lock(mu_);
  TenantState* state = find(tenant);
  if (state == nullptr) return result;  // kUnknown
  MutexLock tenant_lock(state->mu);
  // Deterministic refill: tokens accrue with virtual time only. Submissions
  // from concurrent threads may present non-monotonic arrivals; refill is
  // clamped so replaying the same arrival multiset yields the same buckets.
  if (now > state->last_refill) {
    state->tokens =
        std::min(state->quota.burst,
                 state->tokens + (now - state->last_refill) *
                                     state->quota.rate_jobs_per_sec);
    state->last_refill = now;
  }
  result.quota = state->quota;
  result.name = state->name;
  if (state->tokens >= 1.0) {
    state->tokens -= 1.0;
    state->consecutive_rejects = 0;
    result.outcome = TokenResult::Outcome::kOk;
  } else {
    ++state->consecutive_rejects;
    const SimTime until_token =
        (1.0 - state->tokens) / state->quota.rate_jobs_per_sec;
    result.outcome = TokenResult::Outcome::kThrottled;
    result.retry_after = std::max(until_token, backoff_locked(*state));
  }
  result.tokens_left = state->tokens;
  obs::Registry::instance()
      .gauge("service.tenant." + state->name + ".tokens")
      .set(state->tokens);
  return result;
}

SimTime TenantRegistry::penalize(TenantId tenant) {
  ReaderMutexLock lock(mu_);
  TenantState* state = find(tenant);
  if (state == nullptr) return 0.0;
  MutexLock tenant_lock(state->mu);
  ++state->consecutive_rejects;
  return backoff_locked(*state);
}

StatusOr<TenantQuota> TenantRegistry::quota(TenantId tenant) const {
  ReaderMutexLock lock(mu_);
  const TenantState* state = find(tenant);
  if (state == nullptr) return Status::not_found("unknown tenant");
  MutexLock tenant_lock(state->mu);
  return state->quota;
}

StatusOr<std::string> TenantRegistry::tenant_name(TenantId tenant) const {
  ReaderMutexLock lock(mu_);
  const TenantState* state = find(tenant);
  if (state == nullptr) return Status::not_found("unknown tenant");
  return state->name;
}

std::vector<TenantId> TenantRegistry::tenants() const {
  ReaderMutexLock lock(mu_);
  std::vector<TenantId> out;
  out.reserve(tenants_.size());
  for (const auto& [id, state] : tenants_) out.push_back(id);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace s3::service
