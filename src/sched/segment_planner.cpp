#include "sched/segment_planner.h"

#include <algorithm>

namespace s3::sched {

SegmentPlanner::SegmentPlanner(WaveSizing mode,
                               std::uint64_t blocks_per_segment)
    : mode_(mode), blocks_per_segment_(blocks_per_segment) {
  S3_CHECK(blocks_per_segment > 0);
}

std::uint64_t SegmentPlanner::num_segments(std::uint64_t file_blocks) const {
  S3_CHECK(file_blocks > 0);
  return (file_blocks + blocks_per_segment_ - 1) / blocks_per_segment_;
}

std::uint64_t SegmentPlanner::next_wave(std::uint64_t file_blocks,
                                        std::uint64_t cursor,
                                        int effective_slots,
                                        int nominal_slots) const {
  S3_CHECK(file_blocks > 0);
  S3_CHECK(cursor < file_blocks);
  // Segment-size recomputation invariant (§IV-D): whatever the slot-checking
  // feedback said, the recomputed wave is at least one block, never larger
  // than the nominal segment, and never overshoots the file.
  std::uint64_t wave = 0;
  S3_POSTCONDITION(wave >= 1 && wave <= blocks_per_segment_ &&
                   wave <= file_blocks);
  if (mode_ == WaveSizing::kFixedSegments) {
    // Stay aligned to the fixed segment table: a wave is exactly the segment
    // the cursor sits at, which is blocks_per_segment_ except for the final
    // (possibly short) segment of the file.
    wave = std::min(blocks_per_segment_, file_blocks - cursor);
    return wave;
  }
  // Dynamic: scale the nominal segment by the fraction of slots usable, so
  // the merged sub-job keeps the same number of whole task waves on the
  // shrunken cluster instead of paying a ragged extra wave.
  const auto effective = std::max(1, effective_slots);
  const auto nominal = std::max(effective, nominal_slots);
  const std::uint64_t scaled =
      blocks_per_segment_ * static_cast<std::uint64_t>(effective) /
      static_cast<std::uint64_t>(nominal);
  wave = std::min(std::max<std::uint64_t>(1, scaled), file_blocks);
  return wave;
}

}  // namespace s3::sched
