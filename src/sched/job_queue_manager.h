// The S3 Job Queue Manager — Algorithm 1 of the paper, generalized from
// segment indices to a circular block cursor so that both fixed segments and
// dynamically-resized waves share one implementation.
//
// One JobQueueManager manages one file's circular scan:
//  * admit(j)          — job j joins the queue; its start offset is the
//                        current cursor (the next block to be scheduled),
//                        i.e. J(ss) in Algorithm 1 line 2.
//  * form_batch(wave)  — lines 1-4: merge every queued job's sub-job for the
//                        next `wave` blocks into one batch and advance the
//                        cursor (circularly; lines 10-13). Jobs arriving
//                        after this call are aligned to the *next* wave.
//  * complete_batch()  — lines 5-9: account the finished wave against every
//                        member and retire jobs whose circular scan is done.
//
// Invariants (checked):
//  * at most one batch is in flight;
//  * every queued job is a member of every formed batch (alignment);
//  * a job completes after consuming exactly `file_blocks` blocks.
//
// Thread safety and the admission fast path: late-arriving jobs may be
// admitted from any thread while a driver thread forms and completes batches
// (the paper's dynamic sub-job adjustment — a job that arrives while a batch
// is in flight is aligned to the next wave). In the default kSharded mode
// admit() never touches the global queue mutex: arrivals land in one of
// kAdmitShards independently-locked pending buffers (sequenced by an atomic
// counter) and are folded into the queue — in admission order — at the top
// of the next form_batch/retire. Folding happens under the queue mutex while
// the cursor is exactly where it was when the arrival landed (only
// form_batch moves it), so a folded job is indistinguishable from one
// admitted under the global mutex. kSerialized preserves the old
// single-mutex admission path as a benchmark baseline. The discipline is
// machine-checked by Clang Thread Safety Analysis.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/types.h"
#include "sched/scheduler.h"

namespace s3::sched {

class JobQueueManager {
 public:
  enum class AdmissionMode {
    kSharded,     // admit() takes only a shard lock (default)
    kSerialized,  // admit() takes the global queue mutex (bench baseline)
  };

  JobQueueManager(FileId file, std::uint64_t file_blocks,
                  AdmissionMode mode = AdmissionMode::kSharded);

  [[nodiscard]] FileId file() const { return file_; }
  [[nodiscard]] std::uint64_t file_blocks() const { return file_blocks_; }
  [[nodiscard]] AdmissionMode admission_mode() const { return mode_; }

  // Admits a job into the queue; it starts scanning at the current cursor
  // (for sharded admissions: the cursor at the fold point, which is the same
  // value — only form_batch moves the cursor).
  void admit(JobId job, int priority = 0) S3_EXCLUDES(mu_);

  [[nodiscard]] bool empty() const S3_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return jobs_.empty() && pending_count_.load(std::memory_order_acquire) == 0;
  }
  [[nodiscard]] std::size_t queued_jobs() const S3_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return jobs_.size() +
           static_cast<std::size_t>(
               pending_count_.load(std::memory_order_acquire));
  }
  [[nodiscard]] std::uint64_t cursor() const S3_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return cursor_;
  }
  [[nodiscard]] bool batch_in_flight() const S3_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return in_flight_.has_value();
  }

  // Blocks a job still needs (file_blocks for a fresh job; 0 never appears —
  // completed jobs are removed).
  [[nodiscard]] std::uint64_t remaining(JobId job) const S3_EXCLUDES(mu_);

  // Forms the next merged sub-job over [cursor, cursor + wave) and advances
  // the cursor. `max_members` > 0 caps batch membership (priority extension:
  // the highest-priority, earliest-admitted jobs are preferred; the rest
  // stay aligned and wait). Requires !empty() and no batch in flight.
  [[nodiscard]] Batch form_batch(BatchId id, std::uint64_t wave,
                                 std::size_t max_members = 0) S3_EXCLUDES(mu_);

  // Accounts the in-flight batch as finished; returns the jobs it completed
  // (already removed from the queue).
  std::vector<JobId> complete_batch() S3_EXCLUDES(mu_);

  // Permanently removes a failed (quarantined) job from the queue — and from
  // the in-flight batch's membership, so complete_batch() will not account
  // the wave against it. kNotFound if the job is not queued here.
  [[nodiscard]] Status retire(JobId job) S3_EXCLUDES(mu_);

  // Test-only: overwrites the scan cursor with an arbitrary (possibly
  // out-of-range) value so the death tests can prove the S3_DCHECK contracts
  // catch a corrupted cursor. Never call outside tests.
  void corrupt_cursor_for_test(std::uint64_t cursor) S3_EXCLUDES(mu_);

  static constexpr std::size_t kAdmitShards = 8;

 private:
  struct QueuedJob {
    JobId id;
    std::uint64_t start_block = 0;
    // The next block index this job needs. Equal to the cursor for every
    // job that has joined every wave since admission; lags behind (waiting
    // for the scan to wrap) only when membership capping skipped the job.
    std::uint64_t next_block = 0;
    std::uint64_t remaining = 0;
    int priority = 0;
    std::uint64_t seq = 0;
  };

  struct InFlight {
    BatchId id;
    std::vector<Batch::Member> members;
  };

  // A sharded arrival not yet folded into jobs_. Carries only what admit()
  // knew without the queue mutex; start/next block are stamped at fold time.
  struct PendingAdmit {
    JobId id;
    int priority = 0;
    std::uint64_t seq = 0;
  };

  // One admission shard: arrivals hash to a shard by job id, so a duplicate
  // admission always collides inside one shard's pending buffer (or against
  // jobs_ at fold time). Shards share a rank — admit() holds exactly one,
  // and the fold acquires them one at a time.
  struct AdmitShard {
    mutable AnnotatedMutex mu{LockRank::kSchedAdmitShard};
    std::vector<PendingAdmit> pending S3_GUARDED_BY(mu);
  };

  [[nodiscard]] const QueuedJob* find(JobId job) const S3_REQUIRES(mu_);

  // Drains every shard's pending buffer into jobs_ in admission (seq) order.
  // Called at the top of every operation that reads or mutates jobs_ with
  // the queue mutex held.
  void fold_pending() S3_REQUIRES(mu_);

  FileId file_;
  std::uint64_t file_blocks_;
  AdmissionMode mode_;
  mutable AnnotatedMutex mu_{LockRank::kSchedJobQueue};
  std::uint64_t cursor_ S3_GUARDED_BY(mu_) = 0;
  std::vector<QueuedJob> jobs_ S3_GUARDED_BY(mu_);
  std::optional<InFlight> in_flight_ S3_GUARDED_BY(mu_);

  std::array<AdmitShard, kAdmitShards> shards_;
  // Admission order across all shards; also used by the serialized path so
  // both modes produce identical seq streams.
  std::atomic<std::uint64_t> next_seq_{0};
  // Un-folded arrivals across all shards (so empty()/queued_jobs() stay
  // accurate without draining the shards).
  std::atomic<std::uint64_t> pending_count_{0};
  // Relaxed mirrors of cursor_/in_flight_ for journaling sharded admissions
  // without the queue mutex. Updated wherever the guarded truth changes;
  // exact in any single-threaded interleaving, at worst one wave stale for
  // an admission racing form_batch/complete_batch (observability only — the
  // fold stamps the authoritative start block).
  std::atomic<std::uint64_t> cursor_hint_{0};
  std::atomic<bool> in_flight_hint_{false};
};

}  // namespace s3::sched
