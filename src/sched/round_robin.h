// Round-robin processor sharing at segment granularity — an analysis
// baseline *between* FIFO and S3 (related to the partial-utilization
// schedulers of paper §II-B). Each batch is one segment of ONE job; pending
// jobs take turns. Jobs therefore start quickly (low waiting time, like S3)
// but nothing is merged, so every job still pays its own full scan (total
// I/O like FIFO). Comparing FIFO / RoundRobin / S3 decomposes S3's win into
// its two ingredients: preemption at segment boundaries and shared scans.
#pragma once

#include <optional>
#include <vector>

#include "common/types.h"
#include "sched/file_catalog.h"
#include "sched/scheduler.h"

namespace s3::sched {

class RoundRobinScheduler final : public Scheduler {
 public:
  RoundRobinScheduler(const FileCatalog& catalog,
                      std::uint64_t blocks_per_slice);

  [[nodiscard]] std::string name() const override { return "RR"; }

  void on_job_arrival(const JobArrival& job, SimTime now) override;
  std::optional<Batch> next_batch(SimTime now,
                                  const ClusterStatus& status) override;
  void on_batch_complete(BatchId batch, SimTime now) override;
  [[nodiscard]] std::size_t pending_jobs() const override;

 private:
  struct ActiveJob {
    JobId id;
    FileId file;
    std::uint64_t next_block = 0;
    std::uint64_t remaining = 0;
  };

  const FileCatalog* catalog_;
  std::uint64_t blocks_per_slice_;
  std::vector<ActiveJob> jobs_;   // rotation order
  std::size_t rotation_next_ = 0;
  bool batch_in_flight_ = false;
  std::size_t in_flight_index_ = 0;
  std::uint64_t in_flight_blocks_ = 0;
  IdGenerator<BatchId> batch_ids_;
};

}  // namespace s3::sched
