// Hadoop's default FIFO scheduler (paper §II-B): pending jobs are sorted by
// priority, then submission time, and run strictly one after another, each
// as a single whole-file batch with a single member — no sharing of any
// kind.
#pragma once

#include <deque>
#include <optional>

#include "common/types.h"
#include "sched/file_catalog.h"
#include "sched/scheduler.h"

namespace s3::sched {

class FifoScheduler final : public Scheduler {
 public:
  explicit FifoScheduler(const FileCatalog& catalog);

  [[nodiscard]] std::string name() const override { return "FIFO"; }

  void on_job_arrival(const JobArrival& job, SimTime now) override;
  std::optional<Batch> next_batch(SimTime now,
                                  const ClusterStatus& status) override;
  void on_batch_complete(BatchId batch, SimTime now) override;
  [[nodiscard]] std::size_t pending_jobs() const override;

 private:
  struct Pending {
    JobArrival job;
    std::uint64_t seq = 0;  // arrival order tiebreaker
  };

  const FileCatalog* catalog_;
  std::deque<Pending> queue_;  // sorted: priority desc, then seq asc
  std::uint64_t next_seq_ = 0;
  bool batch_in_flight_ = false;
  IdGenerator<BatchId> batch_ids_;
};

}  // namespace s3::sched
