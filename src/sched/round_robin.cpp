#include "sched/round_robin.h"

#include <algorithm>

#include "sched/segment_planner.h"

namespace s3::sched {

RoundRobinScheduler::RoundRobinScheduler(const FileCatalog& catalog,
                                         std::uint64_t blocks_per_slice)
    : catalog_(&catalog), blocks_per_slice_(blocks_per_slice) {
  S3_CHECK(blocks_per_slice > 0);
}

void RoundRobinScheduler::on_job_arrival(const JobArrival& job,
                                         SimTime /*now*/) {
  S3_CHECK_MSG(catalog_->contains(job.file),
               "job " << job.id << " references unknown file");
  ActiveJob active;
  active.id = job.id;
  active.file = job.file;
  active.next_block = 0;
  active.remaining = catalog_->num_blocks(job.file);
  jobs_.push_back(active);
}

std::optional<Batch> RoundRobinScheduler::next_batch(
    SimTime /*now*/, const ClusterStatus& /*status*/) {
  if (batch_in_flight_ || jobs_.empty()) return std::nullopt;
  const std::size_t index = wrap_index(rotation_next_, jobs_.size());
  ActiveJob& job = jobs_[index];

  Batch batch;
  batch.id = batch_ids_.next();
  batch.file = job.file;
  batch.start_block = job.next_block;
  batch.num_blocks = std::min(blocks_per_slice_, job.remaining);
  Batch::Member member;
  member.job = job.id;
  member.blocks = batch.num_blocks;
  member.completes = job.remaining <= batch.num_blocks;
  batch.members.push_back(member);

  batch_in_flight_ = true;
  in_flight_index_ = index;
  in_flight_blocks_ = batch.num_blocks;
  return batch;
}

void RoundRobinScheduler::on_batch_complete(BatchId /*batch*/,
                                            SimTime /*now*/) {
  S3_CHECK_MSG(batch_in_flight_, "completion without a running batch");
  batch_in_flight_ = false;
  ActiveJob& job = jobs_[in_flight_index_];
  S3_CHECK(job.remaining >= in_flight_blocks_);
  job.remaining -= in_flight_blocks_;
  job.next_block = advance_cursor(job.next_block, in_flight_blocks_,
                                  catalog_->num_blocks(job.file));
  if (job.remaining == 0) {
    jobs_.erase(jobs_.begin() + static_cast<std::ptrdiff_t>(in_flight_index_));
    // Keep the rotation pointing at the job after the removed one.
    rotation_next_ = jobs_.empty() ? 0 : wrap_index(in_flight_index_, jobs_.size());
  } else {
    rotation_next_ = advance_cursor(in_flight_index_, 1, jobs_.size());
  }
}

std::size_t RoundRobinScheduler::pending_jobs() const { return jobs_.size(); }

}  // namespace s3::sched
