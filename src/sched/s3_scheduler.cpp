#include "sched/s3_scheduler.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/journal.h"
#include "obs/trace.h"

namespace s3::sched {

S3Scheduler::S3Scheduler(const FileCatalog& catalog, S3Options options,
                         const cluster::Topology* topology)
    : catalog_(&catalog),
      options_(options),
      topology_(topology),
      planner_(options.wave_sizing, options.blocks_per_segment),
      heartbeats_(options.slow_node_threshold, options.suspect_timeout,
                  options.dead_timeout) {
  S3_CHECK(options.blocks_per_segment > 0);
}

JobQueueManager& S3Scheduler::queue(FileId file) {
  auto it = queues_.find(file);
  if (it == queues_.end()) {
    auto jqm =
        std::make_unique<JobQueueManager>(file, catalog_->num_blocks(file));
    it = queues_.emplace(file, std::move(jqm)).first;
    file_rotation_.push_back(file);
  }
  return *it->second;
}

const JobQueueManager* S3Scheduler::queue_for(FileId file) const {
  const auto it = queues_.find(file);
  return it == queues_.end() ? nullptr : it->second.get();
}

void S3Scheduler::on_job_arrival(const JobArrival& job, SimTime /*now*/) {
  S3_CHECK_MSG(catalog_->contains(job.file),
               "job " << job.id << " references unknown file");
  queue(job.file).admit(job.id, job.priority);
}

int S3Scheduler::effective_slots(const ClusterStatus& status) const {
  int excluded_slots = 0;
  for (const NodeId node : heartbeats_.dead_nodes()) {
    excluded_slots +=
        topology_ != nullptr ? topology_->node(node).map_slots : 1;
  }
  for (const NodeId node : heartbeats_.slow_nodes()) {
    // A dead node cannot also be counted slow (it has no live report), but
    // guard against double-subtraction anyway.
    if (heartbeats_.health(node) == cluster::NodeHealth::kDead) continue;
    excluded_slots +=
        topology_ != nullptr ? topology_->node(node).map_slots : 1;
  }
  return std::max(1, status.total_map_slots - excluded_slots);
}

void S3Scheduler::sweep_heartbeats(SimTime now) {
  const cluster::HealthTransitions transitions = heartbeats_.sweep(now);
  if (transitions.suspected.empty() && transitions.died.empty()) return;
  auto& journal = obs::EventJournal::instance();
  for (const NodeId node : transitions.suspected) {
    S3_LOG(kWarn, "s3") << "node " << node << " suspected (heartbeat silence)";
    if (journal.observed()) {
      obs::JournalEvent event;
      event.type = obs::JournalEventType::kNodeSuspected;
      event.node = node;
      event.sim_time = now;
      event.detail = "cause=heartbeat_silence";
      journal.record(std::move(event));
    }
  }
  for (const NodeId node : transitions.died) {
    S3_LOG(kWarn, "s3") << "node " << node << " dead (heartbeat timeout)";
    if (journal.observed()) {
      obs::JournalEvent event;
      event.type = obs::JournalEventType::kNodeDead;
      event.node = node;
      event.sim_time = now;
      event.detail = "cause=heartbeat_timeout,observed_by=scheduler";
      journal.record(std::move(event));
    }
  }
}

void S3Scheduler::on_node_dead(NodeId node, SimTime now) {
  if (heartbeats_.health(node) == cluster::NodeHealth::kDead) return;
  heartbeats_.mark_dead(node);
  S3_LOG(kWarn, "s3") << "node " << node << " reported dead";
  auto& journal = obs::EventJournal::instance();
  if (journal.observed()) {
    obs::JournalEvent event;
    event.type = obs::JournalEventType::kNodeDead;
    event.node = node;
    event.sim_time = now;
    event.detail = "cause=reported,observed_by=scheduler";
    journal.record(std::move(event));
  }
}

void S3Scheduler::on_job_failed(JobId job, SimTime /*now*/) {
  for (const auto& [file, jqm] : queues_) {
    if (jqm->retire(job).is_ok()) return;
  }
  // Unknown job: already completed (or never admitted) — nothing to retire.
}

std::optional<Batch> S3Scheduler::next_batch(SimTime now,
                                             const ClusterStatus& status) {
  // Heartbeat-timeout detection runs at every decision point, so a node
  // that went silent mid-scan shrinks the very next wave (the cursor
  // segment is re-split over the survivors' slots by next_wave below).
  sweep_heartbeats(now);
  if (in_flight_file_.has_value()) return std::nullopt;
  if (file_rotation_.empty()) return std::nullopt;
  S3_TRACE_SPAN("sched", "next_batch");

  // Round-robin over files with queued jobs.
  for (std::size_t probe = 0; probe < file_rotation_.size(); ++probe) {
    const std::size_t idx =
        wrap_index(rotation_next_ + probe, file_rotation_.size());
    const FileId file = file_rotation_[idx];
    JobQueueManager& jqm = *queues_.at(file);
    if (jqm.empty()) continue;

    // Segment size is recomputed per batch from the freshest slot-checking
    // feedback (§IV-D); the recomputation must stay within one nominal
    // segment and never produce an empty wave.
    const int usable = effective_slots(status);
    S3_DCHECK(usable >= 1);
    const int nominal = topology_ != nullptr ? topology_->total_map_slots()
                                             : status.total_map_slots;
    const std::uint64_t wave = planner_.next_wave(
        jqm.file_blocks(), jqm.cursor(), usable, nominal);
    S3_DCHECK_MSG(wave >= 1 && wave <= planner_.blocks_per_segment() &&
                      wave <= jqm.file_blocks(),
                  "recomputed wave " << wave << " out of range");

    auto& journal = obs::EventJournal::instance();
    if (journal.observed() && wave != planner_.blocks_per_segment()) {
      // Dynamic segment sizing (§IV-D-2) produced a wave different from the
      // nominal segment — record the slot feedback that drove it.
      obs::JournalEvent event;
      event.type = obs::JournalEventType::kSegmentRecomputed;
      event.file = file;
      event.cursor = jqm.cursor();
      event.wave = wave;
      event.detail = "nominal=" + std::to_string(planner_.blocks_per_segment()) +
                     ",usable_slots=" + std::to_string(usable);
      journal.record(std::move(event));
    }

    Batch batch =
        jqm.form_batch(batch_ids_.next(), wave, options_.max_jobs_per_batch);
    batch.excluded_nodes = heartbeats_.slow_nodes();
    for (const NodeId node : heartbeats_.dead_nodes()) {
      if (std::find(batch.excluded_nodes.begin(), batch.excluded_nodes.end(),
                    node) == batch.excluded_nodes.end()) {
        batch.excluded_nodes.push_back(node);
      }
    }
    if (journal.observed()) {
      // Slot checking (§IV-D-1): every node the wave will skip.
      for (const NodeId node : batch.excluded_nodes) {
        obs::JournalEvent event;
        event.type = obs::JournalEventType::kSlowNodeExcluded;
        event.file = file;
        event.batch = batch.id;
        event.node = node;
        event.wave = wave;
        journal.record(std::move(event));
      }
    }
    in_flight_file_ = file;
    in_flight_batch_ = batch.id;
    rotation_next_ = advance_cursor(idx, 1, file_rotation_.size());
    S3_LOG(kDebug, "s3") << "launch " << batch.id << " file " << file
                         << " blocks [" << batch.start_block << ", +"
                         << batch.num_blocks << ") members "
                         << batch.members.size();
    return batch;
  }
  return std::nullopt;
}

void S3Scheduler::on_batch_complete(BatchId batch, SimTime /*now*/) {
  S3_CHECK_MSG(in_flight_file_.has_value(),
               "completion without a running batch");
  S3_CHECK_MSG(batch == in_flight_batch_,
               "completion for unexpected batch " << batch);
  queues_.at(*in_flight_file_)->complete_batch();
  in_flight_file_.reset();
}

void S3Scheduler::on_progress(const cluster::ProgressReport& report,
                              SimTime /*now*/) {
  // Completed tasks (progress = 1.0) are kept as observations: they are the
  // healthy baseline the median-based slow-node test compares against. The
  // latest report per node wins, so a recovered node un-flags itself as soon
  // as it finishes a task at normal speed.
  heartbeats_.report(report);
}

std::size_t S3Scheduler::pending_jobs() const {
  std::size_t total = 0;
  for (const auto& [file, jqm] : queues_) total += jqm->queued_jobs();
  return total;
}

std::vector<NodeId> S3Scheduler::currently_excluded() const {
  return heartbeats_.slow_nodes();
}

std::vector<NodeId> S3Scheduler::currently_dead() const {
  return heartbeats_.dead_nodes();
}

}  // namespace s3::sched
