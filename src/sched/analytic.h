// Closed-form TET/ART models for the three schemes under the idealized
// conditions of the paper's Examples 1-3 (§III): every job is a pure scan of
// the same file taking D seconds of cluster time, the scan can be paused and
// resumed at arbitrary points (S3), and combining n jobs optionally costs a
// linear overhead factor. Used to validate the discrete-event simulator and
// to regenerate the worked examples.
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.h"

namespace s3::sched {

struct AnalyticScenario {
  std::vector<SimTime> arrivals;  // must be sorted ascending
  SimTime job_duration = 100.0;   // D: one full scan of the file
  // Combining n jobs takes D * (1 + combine_overhead * (n-1)). The paper's
  // examples use 0 ("assuming the overhead ... is minimal").
  double combine_overhead = 0.0;
};

struct AnalyticOutcome {
  std::vector<SimTime> completions;  // aligned with arrivals
  SimTime tet = 0.0;
  SimTime art = 0.0;
};

// Hadoop FIFO: strictly sequential, full scan each.
[[nodiscard]] AnalyticOutcome analytic_fifo(const AnalyticScenario& s);

// MRShare with predetermined group sizes (jobs fill groups in arrival
// order). A group starts when its last member has arrived and the previous
// group has finished.
[[nodiscard]] AnalyticOutcome analytic_mrshare(
    const AnalyticScenario& s, const std::vector<std::size_t>& group_counts);

// Idealized S3 (continuous sub-job granularity, zero launch overhead):
// every job starts scanning the moment it arrives and finishes exactly D
// later, sharing whatever overlap exists. Example 3's numbers.
[[nodiscard]] AnalyticOutcome analytic_s3(const AnalyticScenario& s);

}  // namespace s3::sched
