// Scheduler-side view of input files: just the block count per file (the
// actual block lists live in the DFS namespace; drivers translate a batch's
// circular block range into concrete BlockIds).
#pragma once

#include <cstdint>
#include <unordered_map>

#include "common/status.h"
#include "common/types.h"

namespace s3::sched {

class FileCatalog {
 public:
  void add(FileId file, std::uint64_t num_blocks) {
    S3_CHECK(num_blocks > 0);
    S3_CHECK_MSG(files_.count(file) == 0, "file registered twice: " << file);
    files_.emplace(file, num_blocks);
  }

  [[nodiscard]] std::uint64_t num_blocks(FileId file) const {
    const auto it = files_.find(file);
    S3_CHECK_MSG(it != files_.end(), "unknown file " << file);
    return it->second;
  }

  [[nodiscard]] bool contains(FileId file) const {
    return files_.count(file) > 0;
  }

 private:
  std::unordered_map<FileId, std::uint64_t> files_;
};

}  // namespace s3::sched
