// MRShare-style file-level shared scan (Nykiel et al., PVLDB 2010; paper
// §II-C): jobs accessing the same file are collected into groups, and each
// group is processed as one merged whole-file job sharing a single scan.
// Jobs that arrive early wait for their group to fill before anything runs.
//
// Grouping policies (the paper's Figure 4 variants):
//  * SingleBatch          — MRS1: every job of the workload in one group.
//  * FixedGroups{counts}  — MRS2 = {6,4}, MRS3 = {3,3,4}: groups are filled
//                           in arrival order and released when full.
//  * TimeWindow{w}        — extension: a group is released w seconds after
//                           its first member arrived.
//
// flush() releases any partially-filled group (the driver calls it once it
// knows no further jobs will arrive; this is what lets SingleBatch
// terminate).
#pragma once

#include <deque>
#include <optional>
#include <unordered_map>
#include <variant>
#include <vector>

#include "common/types.h"
#include "sched/file_catalog.h"
#include "sched/scheduler.h"

namespace s3::sched {

struct SingleBatch {};
struct FixedGroups {
  std::vector<std::size_t> counts;  // cycled if more groups are needed
};
struct TimeWindow {
  SimTime window = 60.0;
};
using MRSharePolicy = std::variant<SingleBatch, FixedGroups, TimeWindow>;

class MRShareScheduler final : public Scheduler {
 public:
  MRShareScheduler(const FileCatalog& catalog, MRSharePolicy policy,
                   std::string name = "MRShare");

  [[nodiscard]] std::string name() const override { return name_; }

  void on_job_arrival(const JobArrival& job, SimTime now) override;
  std::optional<Batch> next_batch(SimTime now,
                                  const ClusterStatus& status) override;
  void on_batch_complete(BatchId batch, SimTime now) override;
  [[nodiscard]] std::size_t pending_jobs() const override;
  void flush(SimTime now) override;

  // Earliest future time at which a TimeWindow group becomes ready; drivers
  // should re-call next_batch() then. nullopt for other policies.
  [[nodiscard]] std::optional<SimTime> next_decision_time() const override;

 private:
  struct OpenGroup {
    FileId file;
    std::vector<JobId> jobs;
    SimTime opened_at = 0.0;
    std::size_t group_index = 0;  // how many groups this file released before
  };
  struct ReadyGroup {
    FileId file;
    std::vector<JobId> jobs;
  };

  [[nodiscard]] OpenGroup* find_open(FileId file);
  void release_group(std::size_t open_index);
  // Group size targeted by FixedGroups for the group_index-th group.
  [[nodiscard]] std::size_t target_count(std::size_t group_index) const;
  void maybe_release_time_windows(SimTime now);

  const FileCatalog* catalog_;
  MRSharePolicy policy_;
  std::string name_;

  std::vector<OpenGroup> open_;   // at most one per file
  std::deque<ReadyGroup> ready_;  // released groups, FIFO
  // Number of groups already released per file (indexes FixedGroups counts).
  std::unordered_map<FileId, std::size_t> released_groups_;
  bool batch_in_flight_ = false;
  std::size_t in_flight_jobs_ = 0;
  IdGenerator<BatchId> batch_ids_;
};

}  // namespace s3::sched
