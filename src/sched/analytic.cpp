#include "sched/analytic.h"

#include <algorithm>

#include "common/status.h"

namespace s3::sched {
namespace {

void validate(const AnalyticScenario& s) {
  S3_CHECK(!s.arrivals.empty());
  S3_CHECK(s.job_duration > 0.0);
  S3_CHECK(std::is_sorted(s.arrivals.begin(), s.arrivals.end()));
  S3_CHECK(s.combine_overhead >= 0.0);
}

AnalyticOutcome finish(const AnalyticScenario& s,
                       std::vector<SimTime> completions) {
  AnalyticOutcome out;
  out.completions = std::move(completions);
  const SimTime first_arrival = s.arrivals.front();
  SimTime last_completion = 0.0;
  SimTime response_sum = 0.0;
  for (std::size_t i = 0; i < out.completions.size(); ++i) {
    last_completion = std::max(last_completion, out.completions[i]);
    response_sum += out.completions[i] - s.arrivals[i];
  }
  out.tet = last_completion - first_arrival;
  out.art = response_sum / static_cast<double>(out.completions.size());
  return out;
}

}  // namespace

AnalyticOutcome analytic_fifo(const AnalyticScenario& s) {
  validate(s);
  std::vector<SimTime> completions(s.arrivals.size());
  SimTime cluster_free = 0.0;
  for (std::size_t i = 0; i < s.arrivals.size(); ++i) {
    const SimTime start = std::max(s.arrivals[i], cluster_free);
    completions[i] = start + s.job_duration;
    cluster_free = completions[i];
  }
  return finish(s, std::move(completions));
}

AnalyticOutcome analytic_mrshare(const AnalyticScenario& s,
                                 const std::vector<std::size_t>& group_counts) {
  validate(s);
  S3_CHECK(!group_counts.empty());
  std::size_t total = 0;
  for (const std::size_t c : group_counts) {
    S3_CHECK(c > 0);
    total += c;
  }
  S3_CHECK_MSG(total == s.arrivals.size(),
               "group sizes must cover all jobs exactly");

  std::vector<SimTime> completions(s.arrivals.size());
  SimTime cluster_free = 0.0;
  std::size_t next_job = 0;
  for (const std::size_t count : group_counts) {
    const SimTime last_arrival = s.arrivals[next_job + count - 1];
    const SimTime start = std::max(last_arrival, cluster_free);
    const double factor =
        1.0 + s.combine_overhead * static_cast<double>(count - 1);
    const SimTime end = start + s.job_duration * factor;
    for (std::size_t j = 0; j < count; ++j) completions[next_job + j] = end;
    next_job += count;
    cluster_free = end;
  }
  return finish(s, std::move(completions));
}

AnalyticOutcome analytic_s3(const AnalyticScenario& s) {
  validate(s);
  // Continuous idealization: a job always makes scan progress from the
  // moment it arrives (the circular scan serves every active job at full
  // rate thanks to sharing), so each completes exactly D after arriving.
  std::vector<SimTime> completions(s.arrivals.size());
  for (std::size_t i = 0; i < s.arrivals.size(); ++i) {
    completions[i] = s.arrivals[i] + s.job_duration;
  }
  return finish(s, std::move(completions));
}

}  // namespace s3::sched
