#include "sched/fifo.h"

namespace s3::sched {

FifoScheduler::FifoScheduler(const FileCatalog& catalog)
    : catalog_(&catalog) {}

void FifoScheduler::on_job_arrival(const JobArrival& job, SimTime /*now*/) {
  S3_CHECK_MSG(catalog_->contains(job.file),
               "job " << job.id << " references unknown file");
  Pending pending{job, next_seq_++};
  // Keep the queue sorted by (priority desc, arrival order asc); Hadoop's
  // FIFO scheduler sorts pending jobs exactly this way (paper §II-B).
  auto it = queue_.begin();
  while (it != queue_.end() && it->job.priority >= pending.job.priority) ++it;
  queue_.insert(it, std::move(pending));
}

std::optional<Batch> FifoScheduler::next_batch(SimTime /*now*/,
                                               const ClusterStatus& /*status*/) {
  if (batch_in_flight_ || queue_.empty()) return std::nullopt;
  const JobArrival job = queue_.front().job;
  queue_.pop_front();

  Batch batch;
  batch.id = batch_ids_.next();
  batch.file = job.file;
  batch.start_block = 0;
  batch.num_blocks = catalog_->num_blocks(job.file);
  batch.members.push_back(
      Batch::Member{job.id, batch.num_blocks, /*completes=*/true});
  batch_in_flight_ = true;
  return batch;
}

void FifoScheduler::on_batch_complete(BatchId /*batch*/, SimTime /*now*/) {
  S3_CHECK_MSG(batch_in_flight_, "completion without a running batch");
  batch_in_flight_ = false;
}

std::size_t FifoScheduler::pending_jobs() const {
  return queue_.size() + (batch_in_flight_ ? 1 : 0);
}

}  // namespace s3::sched
