#include "sched/job_queue_manager.h"

#include <algorithm>

#include "common/logging.h"
#include "dfs/segment.h"
#include "obs/journal.h"
#include "sched/segment_planner.h"

namespace s3::sched {
namespace {

// All JQM journal records share the file id and scan cursor; the per-type
// fields are filled in at each decision point.
obs::JournalEvent journal_base(obs::JournalEventType type, FileId file,
                               std::uint64_t cursor) {
  obs::JournalEvent event;
  event.type = type;
  event.file = file;
  event.cursor = cursor;
  return event;
}

}  // namespace

JobQueueManager::JobQueueManager(FileId file, std::uint64_t file_blocks)
    : file_(file), file_blocks_(file_blocks) {
  S3_CHECK(file_blocks > 0);
}

void JobQueueManager::admit(JobId job, int priority) {
  MutexLock lock(mu_);
  S3_CHECK_MSG(find(job) == nullptr, "job admitted twice: " << job);
  S3_DCHECK_MSG(cursor_ < file_blocks_,
                "segment cursor " << cursor_ << " out of range [0, "
                                  << file_blocks_ << ")");
  QueuedJob q;
  q.id = job;
  q.start_block = cursor_;
  q.next_block = cursor_;
  q.remaining = file_blocks_;
  q.priority = priority;
  q.seq = next_seq_++;
  jobs_.push_back(q);
  S3_LOG(kDebug, "jqm") << "admit " << job << " at block " << cursor_;
  auto& journal = obs::EventJournal::instance();
  if (journal.observed()) {
    // A job admitted while a batch is in flight is the paper's dynamic
    // sub-job adjustment: it aligns to the next wave, not the running one.
    auto event = journal_base(in_flight_.has_value()
                                  ? obs::JournalEventType::kLateJobJoined
                                  : obs::JournalEventType::kJobAdmitted,
                              file_, cursor_);
    event.job = job;
    event.remaining = q.remaining;
    journal.record(std::move(event));
  }
}

const JobQueueManager::QueuedJob* JobQueueManager::find(JobId job) const {
  for (const auto& q : jobs_) {
    if (q.id == job) return &q;
  }
  return nullptr;
}

std::uint64_t JobQueueManager::remaining(JobId job) const {
  MutexLock lock(mu_);
  const QueuedJob* q = find(job);
  S3_CHECK_MSG(q != nullptr, "unknown job " << job);
  return q->remaining;
}

Batch JobQueueManager::form_batch(BatchId id, std::uint64_t wave,
                                  std::size_t max_members) {
  MutexLock lock(mu_);
  S3_CHECK_MSG(!in_flight_.has_value(), "batch already in flight");
  S3_CHECK_MSG(!jobs_.empty(), "form_batch on an empty queue");
  S3_CHECK(wave > 0);
  S3_DCHECK_MSG(cursor_ < file_blocks_,
                "segment cursor " << cursor_ << " out of range [0, "
                                  << file_blocks_ << ")");
  wave = std::min(wave, file_blocks_);
  // Algorithm 1 lines 10-13: whatever path forms the batch, its wave must
  // leave the cursor advanced by exactly `wave` from the batch's start,
  // circularly (the batch start may itself have jumped past dead air).
  std::uint64_t batch_start = cursor_;
  S3_POSTCONDITION(cursor_ ==
                   advance_cursor(batch_start, wave, file_blocks_));

  // If no queued job needs the block at the cursor (possible only when
  // membership capping made jobs wait for the scan to wrap around), jump the
  // cursor forward to the nearest needed block instead of scanning dead air.
  const bool anyone_here = std::any_of(
      jobs_.begin(), jobs_.end(),
      [&](const QueuedJob& q) { return q.next_block == cursor_; });
  if (!anyone_here) {
    std::uint64_t best = dfs::circular_distance(
        cursor_, jobs_.front().next_block, file_blocks_);
    for (const auto& q : jobs_) {
      best = std::min(best, dfs::circular_distance(cursor_, q.next_block,
                                                   file_blocks_));
    }
    cursor_ = advance_cursor(cursor_, best, file_blocks_);
    batch_start = cursor_;
  }

  // Candidates: jobs whose scan position is exactly the cursor (alignment —
  // every uncapped job always is).
  std::vector<QueuedJob*> candidates;
  for (auto& q : jobs_) {
    if (q.next_block == cursor_) candidates.push_back(&q);
  }
  S3_CHECK(!candidates.empty());

  if (max_members > 0 && candidates.size() > max_members) {
    std::sort(candidates.begin(), candidates.end(),
              [](const QueuedJob* a, const QueuedJob* b) {
                if (a->priority != b->priority) {
                  return a->priority > b->priority;
                }
                return a->seq < b->seq;
              });
    candidates.resize(max_members);
  }

  Batch batch;
  batch.id = id;
  batch.file = file_;
  batch.start_block = cursor_;
  batch.num_blocks = wave;
  batch.members.reserve(candidates.size());
  for (QueuedJob* q : candidates) {
    // Batch alignment: every member's sub-job starts exactly at the batch
    // cursor, and no member is merged twice into one batch.
    S3_DCHECK_MSG(q->next_block == cursor_,
                  "member " << q->id << " misaligned with cursor " << cursor_);
    S3_DCHECK_MSG(std::none_of(batch.members.begin(), batch.members.end(),
                               [&](const Batch::Member& m) {
                                 return m.job == q->id;
                               }),
                  "member " << q->id << " merged twice into batch " << id);
    Batch::Member m;
    m.job = q->id;
    m.blocks = std::min(q->remaining, wave);
    m.completes = q->remaining <= wave;
    batch.members.push_back(m);
  }

  in_flight_ = InFlight{batch.id, batch.members};
  const std::uint64_t cursor_before = cursor_;
  cursor_ = advance_cursor(cursor_, wave, file_blocks_);

  auto& journal = obs::EventJournal::instance();
  if (journal.observed()) {
    auto merged = journal_base(obs::JournalEventType::kSubJobsMerged, file_,
                               batch.start_block);
    merged.batch = batch.id;
    merged.wave = wave;
    merged.members = batch.members.size();
    std::string detail = "jobs=";
    for (std::size_t i = 0; i < batch.members.size(); ++i) {
      if (i > 0) detail += ',';
      detail += std::to_string(batch.members[i].job.value());
    }
    merged.detail = std::move(detail);
    journal.record(std::move(merged));

    auto advanced = journal_base(obs::JournalEventType::kCursorAdvanced,
                                 file_, cursor_);
    advanced.batch = batch.id;
    advanced.wave = wave;
    advanced.detail = "from=" + std::to_string(cursor_before);
    journal.record(std::move(advanced));
  }
  return batch;
}

std::vector<JobId> JobQueueManager::complete_batch() {
  MutexLock lock(mu_);
  S3_CHECK_MSG(in_flight_.has_value(), "complete_batch with none in flight");
  S3_DCHECK_MSG(cursor_ < file_blocks_,
                "segment cursor " << cursor_ << " out of range [0, "
                                  << file_blocks_ << ")");
  auto& journal = obs::EventJournal::instance();
  std::vector<JobId> completed;
  for (const Batch::Member& m : in_flight_->members) {
    auto it = std::find_if(jobs_.begin(), jobs_.end(),
                           [&](const QueuedJob& q) { return q.id == m.job; });
    S3_CHECK_MSG(it != jobs_.end(), "in-flight member vanished: " << m.job);
    S3_CHECK(it->remaining >= m.blocks);
    it->remaining -= m.blocks;
    it->next_block = advance_cursor(it->next_block, m.blocks, file_blocks_);
    if (it->remaining == 0) {
      S3_CHECK_MSG(m.completes, "completion flag disagreed for " << m.job);
      completed.push_back(m.job);
      jobs_.erase(it);
      if (journal.observed()) {
        auto event = journal_base(obs::JournalEventType::kJobCompleted, file_,
                                  cursor_);
        event.job = m.job;
        event.batch = in_flight_->id;
        journal.record(std::move(event));
      }
    } else {
      S3_CHECK_MSG(!m.completes,
                   "job flagged complete but has blocks left: " << m.job);
    }
  }
  if (journal.observed()) {
    auto event =
        journal_base(obs::JournalEventType::kBatchRetired, file_, cursor_);
    event.batch = in_flight_->id;
    event.members = in_flight_->members.size();
    event.detail = "completed=" + std::to_string(completed.size());
    journal.record(std::move(event));
  }
  in_flight_.reset();
  return completed;
}

Status JobQueueManager::retire(JobId job) {
  MutexLock lock(mu_);
  const auto it = std::find_if(jobs_.begin(), jobs_.end(),
                               [&](const QueuedJob& q) { return q.id == job; });
  if (it == jobs_.end()) {
    return Status::not_found("retire of a job not in this queue");
  }
  const std::uint64_t remaining = it->remaining;
  jobs_.erase(it);
  if (in_flight_.has_value()) {
    auto& members = in_flight_->members;
    members.erase(std::remove_if(members.begin(), members.end(),
                                 [&](const Batch::Member& m) {
                                   return m.job == job;
                                 }),
                  members.end());
  }
  S3_LOG(kWarn, "jqm") << "retire " << job << " with " << remaining
                       << " blocks unscanned";
  auto& journal = obs::EventJournal::instance();
  if (journal.observed()) {
    auto event =
        journal_base(obs::JournalEventType::kJobQuarantined, file_, cursor_);
    event.job = job;
    event.remaining = remaining;
    event.detail = "observed_by=queue";
    journal.record(std::move(event));
  }
  return Status::ok();
}

void JobQueueManager::corrupt_cursor_for_test(std::uint64_t cursor) {
  MutexLock lock(mu_);
  cursor_ = cursor;
}

}  // namespace s3::sched
