#include "sched/job_queue_manager.h"

#include <algorithm>

#include "common/logging.h"
#include "dfs/segment.h"
#include "obs/journal.h"
#include "sched/segment_planner.h"

namespace s3::sched {
namespace {

// All JQM journal records share the file id and scan cursor; the per-type
// fields are filled in at each decision point.
obs::JournalEvent journal_base(obs::JournalEventType type, FileId file,
                               std::uint64_t cursor) {
  obs::JournalEvent event;
  event.type = type;
  event.file = file;
  event.cursor = cursor;
  return event;
}

}  // namespace

JobQueueManager::JobQueueManager(FileId file, std::uint64_t file_blocks,
                                 AdmissionMode mode)
    : file_(file), file_blocks_(file_blocks), mode_(mode) {
  S3_CHECK(file_blocks > 0);
}

void JobQueueManager::admit(JobId job, int priority) {
  if (mode_ == AdmissionMode::kSerialized) {
    // Benchmark baseline: the pre-sharding path, where every admission
    // serializes on the queue mutex against form/complete critical sections.
    MutexLock lock(mu_);
    fold_pending();
    S3_CHECK_MSG(find(job) == nullptr, "job admitted twice: " << job);
    S3_DCHECK_MSG(cursor_ < file_blocks_,
                  "segment cursor " << cursor_ << " out of range [0, "
                                    << file_blocks_ << ")");
    QueuedJob q;
    q.id = job;
    q.start_block = cursor_;
    q.next_block = cursor_;
    q.remaining = file_blocks_;
    q.priority = priority;
    q.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
    jobs_.push_back(q);
    S3_LOG(kDebug, "jqm") << "admit " << job << " at block " << cursor_;
    auto& journal = obs::EventJournal::instance();
    if (journal.observed()) {
      auto event = journal_base(in_flight_.has_value()
                                    ? obs::JournalEventType::kLateJobJoined
                                    : obs::JournalEventType::kJobAdmitted,
                                file_, cursor_);
      event.job = job;
      event.remaining = q.remaining;
      journal.record(std::move(event));
    }
    return;
  }

  // Sharded fast path: one shard lock, one atomic increment — the queue
  // mutex (and the long form_batch critical section it serializes) is never
  // touched. Duplicate admissions hash to the same shard, so the pending
  // scan below plus the fold-time find() cover both halves of the old
  // "admitted twice" contract.
  AdmitShard& shard = shards_[job.value() % kAdmitShards];
  PendingAdmit p;
  p.id = job;
  p.priority = priority;
  {
    MutexLock lock(shard.mu);
    S3_CHECK_MSG(std::none_of(shard.pending.begin(), shard.pending.end(),
                              [&](const PendingAdmit& q) {
                                return q.id == job;
                              }),
                 "job admitted twice: " << job);
    p.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
    shard.pending.push_back(p);
    pending_count_.fetch_add(1, std::memory_order_release);
  }
  // Journal from the relaxed mirrors: exact in every single-threaded
  // interleaving, at worst one wave stale when racing the driver. The paper
  // semantics (a job landing mid-flight joins the *next* wave) are enforced
  // by the fold, not by this label.
  const std::uint64_t cursor_hint =
      cursor_hint_.load(std::memory_order_relaxed);
  S3_LOG(kDebug, "jqm") << "admit " << job << " (sharded) near block "
                        << cursor_hint;
  auto& journal = obs::EventJournal::instance();
  if (journal.observed()) {
    auto event =
        journal_base(in_flight_hint_.load(std::memory_order_relaxed)
                         ? obs::JournalEventType::kLateJobJoined
                         : obs::JournalEventType::kJobAdmitted,
                     file_, cursor_hint);
    event.job = job;
    event.remaining = file_blocks_;
    journal.record(std::move(event));
  }
}

void JobQueueManager::fold_pending() {
  if (pending_count_.load(std::memory_order_acquire) == 0) return;
  S3_DCHECK_MSG(cursor_ < file_blocks_,
                "segment cursor " << cursor_ << " out of range [0, "
                                  << file_blocks_ << ")");
  std::vector<PendingAdmit> drained;
  for (AdmitShard& shard : shards_) {
    MutexLock lock(shard.mu);
    if (shard.pending.empty()) continue;
    drained.insert(drained.end(), shard.pending.begin(), shard.pending.end());
    pending_count_.fetch_sub(shard.pending.size(), std::memory_order_release);
    shard.pending.clear();
  }
  // Admission order is the global seq order, not shard order.
  std::sort(drained.begin(), drained.end(),
            [](const PendingAdmit& a, const PendingAdmit& b) {
              return a.seq < b.seq;
            });
  for (const PendingAdmit& p : drained) {
    S3_CHECK_MSG(find(p.id) == nullptr, "job admitted twice: " << p.id);
    QueuedJob q;
    q.id = p.id;
    q.start_block = cursor_;
    q.next_block = cursor_;
    q.remaining = file_blocks_;
    q.priority = p.priority;
    q.seq = p.seq;
    jobs_.push_back(q);
  }
}

const JobQueueManager::QueuedJob* JobQueueManager::find(JobId job) const {
  for (const auto& q : jobs_) {
    if (q.id == job) return &q;
  }
  return nullptr;
}

std::uint64_t JobQueueManager::remaining(JobId job) const {
  {
    MutexLock lock(mu_);
    const QueuedJob* q = find(job);
    if (q != nullptr) return q->remaining;
  }
  // Not folded yet: a pending admission has consumed nothing.
  const AdmitShard& shard = shards_[job.value() % kAdmitShards];
  MutexLock lock(shard.mu);
  const bool pending =
      std::any_of(shard.pending.begin(), shard.pending.end(),
                  [&](const PendingAdmit& p) { return p.id == job; });
  S3_CHECK_MSG(pending, "unknown job " << job);
  return file_blocks_;
}

Batch JobQueueManager::form_batch(BatchId id, std::uint64_t wave,
                                  std::size_t max_members) {
  MutexLock lock(mu_);
  fold_pending();
  S3_CHECK_MSG(!in_flight_.has_value(), "batch already in flight");
  S3_CHECK_MSG(!jobs_.empty(), "form_batch on an empty queue");
  S3_CHECK(wave > 0);
  S3_DCHECK_MSG(cursor_ < file_blocks_,
                "segment cursor " << cursor_ << " out of range [0, "
                                  << file_blocks_ << ")");
  wave = std::min(wave, file_blocks_);
  // Algorithm 1 lines 10-13: whatever path forms the batch, its wave must
  // leave the cursor advanced by exactly `wave` from the batch's start,
  // circularly (the batch start may itself have jumped past dead air).
  std::uint64_t batch_start = cursor_;
  S3_POSTCONDITION(cursor_ ==
                   advance_cursor(batch_start, wave, file_blocks_));

  // If no queued job needs the block at the cursor (possible only when
  // membership capping made jobs wait for the scan to wrap around), jump the
  // cursor forward to the nearest needed block instead of scanning dead air.
  const bool anyone_here = std::any_of(
      jobs_.begin(), jobs_.end(),
      [&](const QueuedJob& q) { return q.next_block == cursor_; });
  if (!anyone_here) {
    std::uint64_t best = dfs::circular_distance(
        cursor_, jobs_.front().next_block, file_blocks_);
    for (const auto& q : jobs_) {
      best = std::min(best, dfs::circular_distance(cursor_, q.next_block,
                                                   file_blocks_));
    }
    cursor_ = advance_cursor(cursor_, best, file_blocks_);
    batch_start = cursor_;
  }

  // Candidates: jobs whose scan position is exactly the cursor (alignment —
  // every uncapped job always is).
  std::vector<QueuedJob*> candidates;
  for (auto& q : jobs_) {
    if (q.next_block == cursor_) candidates.push_back(&q);
  }
  S3_CHECK(!candidates.empty());

  if (max_members > 0 && candidates.size() > max_members) {
    std::sort(candidates.begin(), candidates.end(),
              [](const QueuedJob* a, const QueuedJob* b) {
                if (a->priority != b->priority) {
                  return a->priority > b->priority;
                }
                return a->seq < b->seq;
              });
    candidates.resize(max_members);
  }

  Batch batch;
  batch.id = id;
  batch.file = file_;
  batch.start_block = cursor_;
  batch.num_blocks = wave;
  batch.members.reserve(candidates.size());
  for (QueuedJob* q : candidates) {
    // Batch alignment: every member's sub-job starts exactly at the batch
    // cursor, and no member is merged twice into one batch.
    S3_DCHECK_MSG(q->next_block == cursor_,
                  "member " << q->id << " misaligned with cursor " << cursor_);
    S3_DCHECK_MSG(std::none_of(batch.members.begin(), batch.members.end(),
                               [&](const Batch::Member& m) {
                                 return m.job == q->id;
                               }),
                  "member " << q->id << " merged twice into batch " << id);
    Batch::Member m;
    m.job = q->id;
    m.blocks = std::min(q->remaining, wave);
    m.completes = q->remaining <= wave;
    batch.members.push_back(m);
  }

  in_flight_ = InFlight{batch.id, batch.members};
  in_flight_hint_.store(true, std::memory_order_relaxed);
  const std::uint64_t cursor_before = cursor_;
  cursor_ = advance_cursor(cursor_, wave, file_blocks_);
  cursor_hint_.store(cursor_, std::memory_order_relaxed);

  auto& journal = obs::EventJournal::instance();
  if (journal.observed()) {
    auto merged = journal_base(obs::JournalEventType::kSubJobsMerged, file_,
                               batch.start_block);
    merged.batch = batch.id;
    merged.wave = wave;
    merged.members = batch.members.size();
    std::string detail = "jobs=";
    for (std::size_t i = 0; i < batch.members.size(); ++i) {
      if (i > 0) detail += ',';
      detail += std::to_string(batch.members[i].job.value());
    }
    merged.detail = std::move(detail);
    journal.record(std::move(merged));

    auto advanced = journal_base(obs::JournalEventType::kCursorAdvanced,
                                 file_, cursor_);
    advanced.batch = batch.id;
    advanced.wave = wave;
    advanced.detail = "from=" + std::to_string(cursor_before);
    journal.record(std::move(advanced));
  }
  return batch;
}

std::vector<JobId> JobQueueManager::complete_batch() {
  MutexLock lock(mu_);
  S3_CHECK_MSG(in_flight_.has_value(), "complete_batch with none in flight");
  S3_DCHECK_MSG(cursor_ < file_blocks_,
                "segment cursor " << cursor_ << " out of range [0, "
                                  << file_blocks_ << ")");
  auto& journal = obs::EventJournal::instance();
  std::vector<JobId> completed;
  for (const Batch::Member& m : in_flight_->members) {
    auto it = std::find_if(jobs_.begin(), jobs_.end(),
                           [&](const QueuedJob& q) { return q.id == m.job; });
    S3_CHECK_MSG(it != jobs_.end(), "in-flight member vanished: " << m.job);
    S3_CHECK(it->remaining >= m.blocks);
    it->remaining -= m.blocks;
    it->next_block = advance_cursor(it->next_block, m.blocks, file_blocks_);
    if (it->remaining == 0) {
      S3_CHECK_MSG(m.completes, "completion flag disagreed for " << m.job);
      completed.push_back(m.job);
      jobs_.erase(it);
      if (journal.observed()) {
        auto event = journal_base(obs::JournalEventType::kJobCompleted, file_,
                                  cursor_);
        event.job = m.job;
        event.batch = in_flight_->id;
        journal.record(std::move(event));
      }
    } else {
      S3_CHECK_MSG(!m.completes,
                   "job flagged complete but has blocks left: " << m.job);
    }
  }
  if (journal.observed()) {
    auto event =
        journal_base(obs::JournalEventType::kBatchRetired, file_, cursor_);
    event.batch = in_flight_->id;
    event.members = in_flight_->members.size();
    event.detail = "completed=" + std::to_string(completed.size());
    journal.record(std::move(event));
  }
  in_flight_.reset();
  in_flight_hint_.store(false, std::memory_order_relaxed);
  return completed;
}

Status JobQueueManager::retire(JobId job) {
  MutexLock lock(mu_);
  fold_pending();
  const auto it = std::find_if(jobs_.begin(), jobs_.end(),
                               [&](const QueuedJob& q) { return q.id == job; });
  if (it == jobs_.end()) {
    return Status::not_found("retire of a job not in this queue");
  }
  const std::uint64_t remaining = it->remaining;
  jobs_.erase(it);
  if (in_flight_.has_value()) {
    auto& members = in_flight_->members;
    members.erase(std::remove_if(members.begin(), members.end(),
                                 [&](const Batch::Member& m) {
                                   return m.job == job;
                                 }),
                  members.end());
  }
  S3_LOG(kWarn, "jqm") << "retire " << job << " with " << remaining
                       << " blocks unscanned";
  auto& journal = obs::EventJournal::instance();
  if (journal.observed()) {
    auto event =
        journal_base(obs::JournalEventType::kJobQuarantined, file_, cursor_);
    event.job = job;
    event.remaining = remaining;
    event.detail = "observed_by=queue";
    journal.record(std::move(event));
  }
  return Status::ok();
}

void JobQueueManager::corrupt_cursor_for_test(std::uint64_t cursor) {
  MutexLock lock(mu_);
  cursor_ = cursor;
  cursor_hint_.store(cursor, std::memory_order_relaxed);
}

}  // namespace s3::sched
