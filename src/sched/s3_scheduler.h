// S3 — the Shared Scan Scheduler (paper §IV). Combines:
//  * per-file Job Queue Managers (Algorithm 1) that align and merge
//    sub-jobs over a circular segment scan;
//  * a SegmentPlanner that sizes each wave (fixed segments, or dynamically
//    from live slot availability — §IV-D-2);
//  * periodic slot checking (§IV-D-1): progress reports feed a
//    HeartbeatTracker; nodes estimated slow are excluded from the next
//    wave's slot count.
//
// When several input files have queued jobs the scheduler serves them in
// round-robin file order, one merged sub-job at a time (the paper studies a
// single common file; multi-file rotation is the natural generalization).
#pragma once

#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "cluster/heartbeat.h"
#include "cluster/topology.h"
#include "common/types.h"
#include "sched/file_catalog.h"
#include "sched/job_queue_manager.h"
#include "sched/scheduler.h"
#include "sched/segment_planner.h"

namespace s3::sched {

struct S3Options {
  WaveSizing wave_sizing = WaveSizing::kFixedSegments;
  // Blocks per segment (fixed mode) / wave upper bound (dynamic mode).
  // Typically the cluster's concurrent map slot count (paper §IV-B).
  std::uint64_t blocks_per_segment = 40;
  // Priority extension: cap on jobs merged into one batch (0 = unlimited).
  std::size_t max_jobs_per_batch = 0;
  // A node is excluded when its estimated task duration exceeds this factor
  // times the cluster median (periodic slot checking).
  double slow_node_threshold = 1.5;
  // Heartbeat lifecycle (failure model §12): silence past suspect_timeout
  // marks a node suspect (watched, slots kept); past dead_timeout it is dead
  // (slots leave the wave-size computation permanently). kTimeNever disables
  // the respective transition.
  SimTime suspect_timeout = kTimeNever;
  SimTime dead_timeout = kTimeNever;
};

class S3Scheduler final : public Scheduler {
 public:
  // `topology` may be nullptr: slot exclusion then assumes one map slot per
  // slow node. If provided, it must outlive the scheduler.
  S3Scheduler(const FileCatalog& catalog, S3Options options,
              const cluster::Topology* topology = nullptr);

  [[nodiscard]] std::string name() const override { return "S3"; }

  void on_job_arrival(const JobArrival& job, SimTime now) override;
  std::optional<Batch> next_batch(SimTime now,
                                  const ClusterStatus& status) override;
  void on_batch_complete(BatchId batch, SimTime now) override;
  void on_progress(const cluster::ProgressReport& report,
                   SimTime now) override;
  // Out-of-band death report (from the engine's fault observation). The
  // node's slots leave every future wave; the next next_batch() call
  // recomputes m and re-splits the cursor segment over the survivors.
  void on_node_dead(NodeId node, SimTime now) override;
  // Poison quarantine: the job is retired from its queue (and from the
  // in-flight batch membership) so co-members keep scanning.
  void on_job_failed(JobId job, SimTime now) override;
  [[nodiscard]] std::size_t pending_jobs() const override;

  // Introspection (tests, ablations).
  [[nodiscard]] const S3Options& options() const { return options_; }
  [[nodiscard]] std::vector<NodeId> currently_excluded() const;
  [[nodiscard]] std::vector<NodeId> currently_dead() const;
  [[nodiscard]] const JobQueueManager* queue_for(FileId file) const;
  [[nodiscard]] std::uint64_t batches_launched() const {
    return batch_ids_.issued();
  }

 private:
  // Map slots usable for the next wave, after excluding slow and dead nodes.
  [[nodiscard]] int effective_slots(const ClusterStatus& status) const;

  // Runs the heartbeat-timeout detector and journals every health
  // transition it produced (healthy -> suspect -> dead).
  void sweep_heartbeats(SimTime now);

  JobQueueManager& queue(FileId file);

  const FileCatalog* catalog_;
  S3Options options_;
  const cluster::Topology* topology_;
  SegmentPlanner planner_;
  cluster::HeartbeatTracker heartbeats_;

  std::unordered_map<FileId, std::unique_ptr<JobQueueManager>> queues_;
  std::vector<FileId> file_rotation_;  // files in first-seen order
  std::size_t rotation_next_ = 0;

  std::optional<FileId> in_flight_file_;
  BatchId in_flight_batch_;
  IdGenerator<BatchId> batch_ids_;
};

}  // namespace s3::sched
