// The scheduler contract shared by FIFO, MRShare and S3, and by both
// execution drivers (the discrete-event simulator and the real threaded
// engine). A driver:
//
//   1. calls on_job_arrival() when a job is submitted;
//   2. whenever the cluster is idle, calls next_batch(); if a batch is
//      returned, executes it (one merged scan of `num_blocks` blocks starting
//      at `start_block`, feeding every member job);
//   3. calls on_batch_complete() when the batch finishes, completing the
//      member jobs flagged `completes`;
//   4. optionally forwards per-node progress reports via on_progress()
//      (S3's periodic slot checking consumes them; others ignore them);
//   5. when no more arrivals will ever come and the scheduler still holds
//      jobs but returns no batch, calls flush() (lets MRShare close a
//      partially-filled group instead of waiting forever).
//
// Exactly one batch runs at a time: a batch is sized to use the entire
// cluster (paper §I: a sub-job "contains the exact amount of work that
// utilizes the entire cluster resources for one round of execution").
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cluster/heartbeat.h"
#include "common/types.h"

namespace s3::sched {

struct JobArrival {
  JobId id;
  FileId file;
  // Higher runs earlier where a scheduler supports priorities (Hadoop FIFO
  // sorts by priority then submission time; S3's priority extension prefers
  // high-priority jobs when batch membership is capped).
  int priority = 0;
};

// Driver-provided view of the cluster at decision time.
struct ClusterStatus {
  int total_map_slots = 0;
  int free_map_slots = 0;
};

struct Batch {
  struct Member {
    JobId job;
    // How many blocks of this batch's range the job actually consumes (a
    // prefix); equals num_blocks except possibly on the job's final batch
    // under dynamic wave sizing.
    std::uint64_t blocks = 0;
    // True if this batch finishes the job's circular scan.
    bool completes = false;
  };

  BatchId id;
  FileId file;
  // Circular block range [start_block, start_block + num_blocks) over the
  // file's block order.
  std::uint64_t start_block = 0;
  std::uint64_t num_blocks = 0;
  std::vector<Member> members;
  // Nodes the scheduler wants no tasks on (S3's slow-node exclusion).
  std::vector<NodeId> excluded_nodes;

  [[nodiscard]] std::vector<JobId> member_jobs() const {
    std::vector<JobId> out;
    out.reserve(members.size());
    for (const auto& m : members) out.push_back(m.job);
    return out;
  }
  [[nodiscard]] std::vector<JobId> completed_jobs() const {
    std::vector<JobId> out;
    for (const auto& m : members) {
      if (m.completes) out.push_back(m.job);
    }
    return out;
  }
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  virtual void on_job_arrival(const JobArrival& job, SimTime now) = 0;

  // Returns the next batch to launch, or nullopt if nothing should start now
  // (no jobs, or a batching policy chooses to keep waiting).
  virtual std::optional<Batch> next_batch(SimTime now,
                                          const ClusterStatus& status) = 0;

  virtual void on_batch_complete(BatchId batch, SimTime now) = 0;

  // Per-node progress feed for periodic slot checking. Default: ignored.
  virtual void on_progress(const cluster::ProgressReport& /*report*/,
                           SimTime /*now*/) {}

  // The driver (or engine) observed a node crash. Schedulers that size waves
  // from cluster capacity must drop the node's slots permanently and re-split
  // the remaining scan over the survivors. Default: ignored.
  virtual void on_node_dead(NodeId /*node*/, SimTime /*now*/) {}

  // A member job failed permanently (poison quarantine): the scheduler must
  // forget it so its co-members' scan is not blocked waiting for it. The job
  // may be mid-scan (part of the in-flight batch) or queued. Default: ignored
  // (correct for schedulers that pop jobs at launch, like FIFO).
  virtual void on_job_failed(JobId /*job*/, SimTime /*now*/) {}

  // Jobs admitted but not yet completed.
  [[nodiscard]] virtual std::size_t pending_jobs() const = 0;

  // Called when the driver knows no further arrivals will come; batching
  // policies that wait for more jobs must stop waiting. Default: no-op.
  virtual void flush(SimTime /*now*/) {}

  // Earliest future time the scheduler wants next_batch() re-polled even if
  // no other event occurs (time-window batching). Default: never.
  [[nodiscard]] virtual std::optional<SimTime> next_decision_time() const {
    return std::nullopt;
  }
};

}  // namespace s3::sched
