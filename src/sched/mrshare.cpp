#include "sched/mrshare.h"

#include <algorithm>

namespace s3::sched {

MRShareScheduler::MRShareScheduler(const FileCatalog& catalog,
                                   MRSharePolicy policy, std::string name)
    : catalog_(&catalog), policy_(std::move(policy)), name_(std::move(name)) {
  if (const auto* fixed = std::get_if<FixedGroups>(&policy_)) {
    S3_CHECK_MSG(!fixed->counts.empty(), "FixedGroups needs at least 1 count");
    for (const std::size_t c : fixed->counts) S3_CHECK(c > 0);
  }
  if (const auto* window = std::get_if<TimeWindow>(&policy_)) {
    S3_CHECK(window->window >= 0.0);
  }
}

MRShareScheduler::OpenGroup* MRShareScheduler::find_open(FileId file) {
  for (auto& g : open_) {
    if (g.file == file) return &g;
  }
  return nullptr;
}

std::size_t MRShareScheduler::target_count(std::size_t group_index) const {
  const auto& fixed = std::get<FixedGroups>(policy_);
  return fixed.counts[group_index % fixed.counts.size()];
}

void MRShareScheduler::release_group(std::size_t open_index) {
  OpenGroup& g = open_[open_index];
  ready_.push_back(ReadyGroup{g.file, std::move(g.jobs)});
  open_.erase(open_.begin() + static_cast<std::ptrdiff_t>(open_index));
}

void MRShareScheduler::on_job_arrival(const JobArrival& job, SimTime now) {
  S3_CHECK_MSG(catalog_->contains(job.file),
               "job " << job.id << " references unknown file");
  OpenGroup* group = find_open(job.file);
  if (group == nullptr) {
    OpenGroup fresh;
    fresh.file = job.file;
    fresh.opened_at = now;
    const auto it = released_groups_.find(job.file);
    fresh.group_index = it == released_groups_.end() ? 0 : it->second;
    open_.push_back(std::move(fresh));
    group = &open_.back();
  }
  group->jobs.push_back(job.id);

  if (std::holds_alternative<FixedGroups>(policy_) &&
      group->jobs.size() >= target_count(group->group_index)) {
    released_groups_[group->file] = group->group_index + 1;
    release_group(static_cast<std::size_t>(group - open_.data()));
  }
}

void MRShareScheduler::maybe_release_time_windows(SimTime now) {
  const auto* window = std::get_if<TimeWindow>(&policy_);
  if (window == nullptr) return;
  for (std::size_t i = open_.size(); i-- > 0;) {
    if (now >= open_[i].opened_at + window->window) {
      released_groups_[open_[i].file] = open_[i].group_index + 1;
      release_group(i);
    }
  }
}

std::optional<Batch> MRShareScheduler::next_batch(
    SimTime now, const ClusterStatus& /*status*/) {
  maybe_release_time_windows(now);
  if (batch_in_flight_ || ready_.empty()) return std::nullopt;
  ReadyGroup group = std::move(ready_.front());
  ready_.pop_front();

  Batch batch;
  batch.id = batch_ids_.next();
  batch.file = group.file;
  batch.start_block = 0;
  batch.num_blocks = catalog_->num_blocks(group.file);
  batch.members.reserve(group.jobs.size());
  for (const JobId job : group.jobs) {
    batch.members.push_back(
        Batch::Member{job, batch.num_blocks, /*completes=*/true});
  }
  batch_in_flight_ = true;
  in_flight_jobs_ = group.jobs.size();
  return batch;
}

void MRShareScheduler::on_batch_complete(BatchId /*batch*/, SimTime /*now*/) {
  S3_CHECK_MSG(batch_in_flight_, "completion without a running batch");
  batch_in_flight_ = false;
  in_flight_jobs_ = 0;
}

std::size_t MRShareScheduler::pending_jobs() const {
  std::size_t count = in_flight_jobs_;
  for (const auto& g : open_) count += g.jobs.size();
  for (const auto& r : ready_) count += r.jobs.size();
  return count;
}

void MRShareScheduler::flush(SimTime /*now*/) {
  while (!open_.empty()) {
    released_groups_[open_.back().file] = open_.back().group_index + 1;
    release_group(open_.size() - 1);
  }
}

std::optional<SimTime> MRShareScheduler::next_decision_time() const {
  const auto* window = std::get_if<TimeWindow>(&policy_);
  if (window == nullptr || open_.empty()) return std::nullopt;
  SimTime earliest = kTimeNever;
  for (const auto& g : open_) {
    earliest = std::min(earliest, g.opened_at + window->window);
  }
  return earliest;
}

}  // namespace s3::sched
