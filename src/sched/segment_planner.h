// Segment planning (paper §IV-B and §IV-D): decides how many blocks the next
// merged sub-job covers.
//
//  * Fixed mode — the paper's baseline formulation: a constant
//    blocks-per-segment m (ideally the cluster's concurrent map slot count),
//    so a file of N blocks has k = ceil(N/m) segments; the final segment may
//    be short, and waves always align to segment boundaries.
//  * Dynamic mode — the §IV-D refinement: the segment is re-scaled to the
//    map slots currently usable (total minus slow/excluded nodes), keeping
//    the number of task waves per merged sub-job constant instead of letting
//    a shrunken cluster pay a ragged extra wave. Re-computed per batch from
//    the freshest slot-checking feedback.
#pragma once

#include <cstdint>

#include "common/status.h"

namespace s3::sched {

// Sanctioned circular-cursor arithmetic. All scheduler code that advances a
// scan cursor or wraps an index must go through these helpers instead of
// writing raw `%` expressions — tools/s3lint (rule `segment-modulo`) flags
// raw modulo on cursor/segment identifiers outside this file, because the
// paper's Algorithm 1 correctness lives in exactly this arithmetic
// (S_j, ..., S_k, S_1, ..., S_{j-1}) and an unchecked `%` is where wrap
// bugs hide.

// Advances a cursor that is already in range [0, size) by `step` blocks,
// wrapping circularly. The in-range precondition is what distinguishes a
// scan cursor (always normalized) from a free-running counter.
[[nodiscard]] constexpr std::uint64_t advance_cursor(std::uint64_t cursor,
                                                     std::uint64_t step,
                                                     std::uint64_t size) {
  S3_DCHECK(size > 0);
  S3_DCHECK(cursor < size);  // a scan cursor is always normalized
  return (cursor + step) % size;
}

// Normalizes a free-running index (e.g. a rotation counter that survives
// queue shrinkage) into [0, size).
[[nodiscard]] constexpr std::uint64_t wrap_index(std::uint64_t index,
                                                 std::uint64_t size) {
  S3_DCHECK(size > 0);
  return index % size;
}

enum class WaveSizing { kFixedSegments, kDynamicSlots };

class SegmentPlanner {
 public:
  // `blocks_per_segment` is used by fixed mode and as the upper bound for
  // dynamic mode's wave (a wave never exceeds one nominal segment).
  SegmentPlanner(WaveSizing mode, std::uint64_t blocks_per_segment);

  [[nodiscard]] WaveSizing mode() const { return mode_; }
  [[nodiscard]] std::uint64_t blocks_per_segment() const {
    return blocks_per_segment_;
  }

  // Number of segments a file of `file_blocks` has under fixed mode.
  [[nodiscard]] std::uint64_t num_segments(std::uint64_t file_blocks) const;

  // Size of the next wave when the cursor is at `cursor` (block index) in a
  // file of `file_blocks` blocks, `effective_slots` map slots are usable out
  // of `nominal_slots` total. Fixed mode ignores the slot counts.
  [[nodiscard]] std::uint64_t next_wave(std::uint64_t file_blocks,
                                        std::uint64_t cursor,
                                        int effective_slots,
                                        int nominal_slots) const;

 private:
  WaveSizing mode_;
  std::uint64_t blocks_per_segment_;
};

}  // namespace s3::sched
