// Task-level cluster simulator — slot-granular scheduling, unlike the batch
// simulator in sim/ where one merged batch owns the whole cluster. This is
// the substrate for the paper's §II-B related-work schedulers (Facebook's
// fair scheduler, Yahoo!'s capacity scheduler: partial utilization, jobs run
// concurrently on slot subsets) and for the §VI future-work integration of
// full- and partial-utilization scheduling: a barrierless task-granular
// shared scan that merges jobs per *task* instead of per wave.
//
// Model: `slots` homogeneous map slots pull tasks one at a time. A task
// covers one block for a set of member jobs (the sharing set); its duration
// is a caller-supplied function of the sharing degree (use the same overlap
// economics as sim::CostModel). A job completes `reduce_tail` seconds after
// its last map task finishes (the reduce tail does not occupy map slots — a
// documented simplification shared by all schedulers under comparison).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "metrics/metrics.h"

namespace s3::tasksim {

struct TaskSimJob {
  JobId id;
  SimTime arrival = 0.0;
  std::uint64_t total_blocks = 0;  // map tasks to run
  double reduce_tail = 0.0;        // appended after the last map task
  int pool = 0;                    // capacity-scheduler pool
};

// One unit of slot work: a block processed for every member job at once.
struct TaskAssignment {
  std::vector<JobId> members;
  std::uint64_t block = 0;  // informational (circular index)
};

// Slot-granular scheduler contract. The engine calls next_task() whenever a
// slot is free; returning nullopt leaves that slot idle until the next
// event.
class TaskScheduler {
 public:
  virtual ~TaskScheduler() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  virtual void on_job_arrival(const TaskSimJob& job, SimTime now) = 0;
  // `slot_pool` identifies the asking slot's capacity pool.
  virtual std::optional<TaskAssignment> next_task(int slot_pool,
                                                  SimTime now) = 0;
  virtual void on_task_complete(const TaskAssignment& task, SimTime now) = 0;
  [[nodiscard]] virtual std::size_t pending_jobs() const = 0;
};

struct TaskSimParams {
  int slots = 40;
  int pools = 1;  // slot i belongs to pool i % pools
  // Duration of one (possibly merged) map task given its sharing degree.
  std::function<double(int sharers)> map_task_seconds;
};

struct TaskSimResult {
  metrics::MetricsSummary summary;
  std::vector<metrics::JobRecord> jobs;
  std::uint64_t tasks_run = 0;
  double busy_slot_seconds = 0.0;
};

// Runs the workload to completion; jobs need not be sorted by arrival.
[[nodiscard]] StatusOr<TaskSimResult> run_task_sim(
    const TaskSimParams& params, TaskScheduler& scheduler,
    std::vector<TaskSimJob> jobs);

// ---------------------------------------------------------------------------
// Schedulers
// ---------------------------------------------------------------------------

// Hadoop FIFO at task level: the head job takes every slot until its tasks
// are exhausted, then the next job starts (full utilization, no sharing).
class FifoTaskScheduler final : public TaskScheduler {
 public:
  [[nodiscard]] std::string name() const override { return "FIFO-task"; }
  void on_job_arrival(const TaskSimJob& job, SimTime now) override;
  std::optional<TaskAssignment> next_task(int slot_pool, SimTime now) override;
  void on_task_complete(const TaskAssignment& task, SimTime now) override;
  [[nodiscard]] std::size_t pending_jobs() const override;

 private:
  struct State {
    TaskSimJob job;
    std::uint64_t launched = 0;
    std::uint64_t completed = 0;
  };
  std::deque<State> queue_;
};

// Facebook-style fair scheduler (paper §II-B): every active job gets a fair
// share of the slots — the next free slot goes to the active job with the
// fewest running tasks. Partial utilization, no sharing of common scans.
class FairTaskScheduler final : public TaskScheduler {
 public:
  [[nodiscard]] std::string name() const override { return "Fair"; }
  void on_job_arrival(const TaskSimJob& job, SimTime now) override;
  std::optional<TaskAssignment> next_task(int slot_pool, SimTime now) override;
  void on_task_complete(const TaskAssignment& task, SimTime now) override;
  [[nodiscard]] std::size_t pending_jobs() const override;

 private:
  struct State {
    TaskSimJob job;
    std::uint64_t launched = 0;
    std::uint64_t completed = 0;
    int running = 0;
    std::uint64_t seq = 0;
  };
  std::vector<State> active_;
  std::uint64_t next_seq_ = 0;
};

// Yahoo!-style capacity scheduler (paper §II-B): the cluster is split into
// pools with guaranteed slot fractions; each pool runs its own FIFO queue.
// Idle pools lend their slots to the busiest other queue (work conserving).
class CapacityTaskScheduler final : public TaskScheduler {
 public:
  explicit CapacityTaskScheduler(int pools);
  [[nodiscard]] std::string name() const override { return "Capacity"; }
  void on_job_arrival(const TaskSimJob& job, SimTime now) override;
  std::optional<TaskAssignment> next_task(int slot_pool, SimTime now) override;
  void on_task_complete(const TaskAssignment& task, SimTime now) override;
  [[nodiscard]] std::size_t pending_jobs() const override;

 private:
  struct State {
    TaskSimJob job;
    std::uint64_t launched = 0;
    std::uint64_t completed = 0;
  };
  std::optional<TaskAssignment> pop_from(std::deque<State>& queue);
  std::vector<std::deque<State>> queues_;  // one per pool
  std::unordered_map<std::uint64_t, int> job_pool_;  // completion routing
};

// Task-granular shared scan — the §VI integration: all active jobs over the
// common file advance one circular cursor together, but WITHOUT the batch
// simulator's wave barrier: every slot independently pulls the next block,
// which serves every currently-aligned job. Late jobs join at the cursor and
// wrap, exactly like S3, at block granularity.
class SharedScanTaskScheduler final : public TaskScheduler {
 public:
  explicit SharedScanTaskScheduler(std::uint64_t file_blocks);
  [[nodiscard]] std::string name() const override { return "S3-barrierless"; }
  void on_job_arrival(const TaskSimJob& job, SimTime now) override;
  std::optional<TaskAssignment> next_task(int slot_pool, SimTime now) override;
  void on_task_complete(const TaskAssignment& task, SimTime now) override;
  [[nodiscard]] std::size_t pending_jobs() const override;

 private:
  struct State {
    TaskSimJob job;
    std::uint64_t launched = 0;   // blocks this job has been included in
    std::uint64_t completed = 0;  // of those, finished
  };
  std::uint64_t file_blocks_;
  std::uint64_t cursor_ = 0;
  std::uint64_t launched_total_ = 0;
  std::vector<State> active_;
};

}  // namespace s3::tasksim
