#include "tasksim/tasksim.h"

#include <algorithm>
#include <queue>

#include "sched/segment_planner.h"

namespace s3::tasksim {

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

namespace {

struct Completion {
  SimTime at = 0.0;
  int slot = 0;
  TaskAssignment task;
};
struct CompletionLater {
  bool operator()(const Completion& a, const Completion& b) const {
    return a.at > b.at;
  }
};

}  // namespace

StatusOr<TaskSimResult> run_task_sim(const TaskSimParams& params,
                                     TaskScheduler& scheduler,
                                     std::vector<TaskSimJob> jobs) {
  if (jobs.empty()) return Status::invalid_argument("no jobs to run");
  if (params.slots <= 0 || params.pools <= 0 || params.pools > params.slots) {
    return Status::invalid_argument("bad slot/pool configuration");
  }
  if (params.map_task_seconds == nullptr) {
    return Status::invalid_argument("map_task_seconds is required");
  }
  std::sort(jobs.begin(), jobs.end(),
            [](const TaskSimJob& a, const TaskSimJob& b) {
              if (a.arrival != b.arrival) return a.arrival < b.arrival;
              return a.id < b.id;
            });

  struct JobProgress {
    std::uint64_t total = 0;
    std::uint64_t completed = 0;
    double reduce_tail = 0.0;
    bool done = false;
  };
  std::unordered_map<JobId, JobProgress> progress;
  for (const auto& job : jobs) {
    if (job.total_blocks == 0) {
      return Status::invalid_argument("job with zero blocks");
    }
    if (progress.count(job.id) > 0) {
      return Status::invalid_argument("duplicate job id");
    }
    progress[job.id] = JobProgress{job.total_blocks, 0, job.reduce_tail, false};
  }

  metrics::JobTimeline timeline;
  TaskSimResult result;

  std::priority_queue<Completion, std::vector<Completion>, CompletionLater>
      completions;
  std::vector<bool> slot_busy(static_cast<std::size_t>(params.slots), false);
  std::size_t next_arrival = 0;
  SimTime now = 0.0;

  const auto offer_slots = [&](SimTime t) {
    bool assigned_any = true;
    while (assigned_any) {
      assigned_any = false;
      for (int slot = 0; slot < params.slots; ++slot) {
        if (slot_busy[static_cast<std::size_t>(slot)]) continue;
        auto task = scheduler.next_task(slot % params.pools, t);
        if (!task.has_value()) continue;
        S3_CHECK_MSG(!task->members.empty(), "empty task assignment");
        const double duration =
            params.map_task_seconds(static_cast<int>(task->members.size()));
        S3_CHECK(duration > 0.0);
        for (const JobId job : task->members) {
          timeline.on_first_started(job, t);
        }
        slot_busy[static_cast<std::size_t>(slot)] = true;
        ++result.tasks_run;
        result.busy_slot_seconds += duration;
        completions.push(Completion{t + duration, slot, std::move(*task)});
        assigned_any = true;
      }
    }
  };

  // Safety bound on total tasks.
  std::uint64_t max_tasks = 0;
  for (const auto& job : jobs) max_tasks += job.total_blocks + 1;

  while (true) {
    // Next event: arrival or completion.
    const bool has_arrival = next_arrival < jobs.size();
    const bool has_completion = !completions.empty();
    if (!has_arrival && !has_completion) {
      if (scheduler.pending_jobs() != 0) {
        return Status::internal("task scheduler stalled with pending jobs");
      }
      break;
    }
    const SimTime arrival_at =
        has_arrival ? jobs[next_arrival].arrival : kTimeNever;
    const SimTime completion_at =
        has_completion ? completions.top().at : kTimeNever;

    // Drain every event at this timestamp before offering slots, so
    // simultaneous arrivals are all visible to the scheduler at once.
    now = std::min(arrival_at, completion_at);
    while (next_arrival < jobs.size() && jobs[next_arrival].arrival <= now) {
      const TaskSimJob& job = jobs[next_arrival++];
      timeline.on_submitted(job.id, now);
      scheduler.on_job_arrival(job, now);
    }
    while (!completions.empty() && completions.top().at <= now) {
      Completion completion = completions.top();
      completions.pop();
      slot_busy[static_cast<std::size_t>(completion.slot)] = false;
      scheduler.on_task_complete(completion.task, now);
      for (const JobId job : completion.task.members) {
        JobProgress& p = progress.at(job);
        S3_CHECK(!p.done);
        ++p.completed;
        S3_CHECK_MSG(p.completed <= p.total, "over-completed job " << job);
        if (p.completed == p.total) {
          p.done = true;
          timeline.on_completed(job, now + p.reduce_tail);
        }
      }
    }
    if (result.tasks_run > max_tasks) {
      return Status::internal("task count exceeded safety bound");
    }
    offer_slots(now);
  }

  if (!timeline.all_done()) {
    return Status::internal("task sim finished with incomplete jobs");
  }
  result.summary = metrics::summarize(timeline);
  result.jobs = timeline.records();
  return result;
}

// ---------------------------------------------------------------------------
// FIFO
// ---------------------------------------------------------------------------

void FifoTaskScheduler::on_job_arrival(const TaskSimJob& job,
                                       SimTime /*now*/) {
  queue_.push_back(State{job, 0, 0});
}

std::optional<TaskAssignment> FifoTaskScheduler::next_task(int /*slot_pool*/,
                                                           SimTime /*now*/) {
  for (auto& state : queue_) {
    if (state.launched < state.job.total_blocks) {
      TaskAssignment task;
      task.members = {state.job.id};
      task.block = state.launched;
      ++state.launched;
      return task;
    }
  }
  return std::nullopt;
}

void FifoTaskScheduler::on_task_complete(const TaskAssignment& task,
                                         SimTime /*now*/) {
  const JobId job = task.members.front();
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (it->job.id == job) {
      ++it->completed;
      if (it->completed == it->job.total_blocks) queue_.erase(it);
      return;
    }
  }
  S3_CHECK_MSG(false, "completion for unknown job " << job);
}

std::size_t FifoTaskScheduler::pending_jobs() const { return queue_.size(); }

// ---------------------------------------------------------------------------
// Fair
// ---------------------------------------------------------------------------

void FairTaskScheduler::on_job_arrival(const TaskSimJob& job, SimTime /*now*/) {
  active_.push_back(State{job, 0, 0, 0, next_seq_++});
}

std::optional<TaskAssignment> FairTaskScheduler::next_task(int /*slot_pool*/,
                                                           SimTime /*now*/) {
  State* best = nullptr;
  for (auto& state : active_) {
    if (state.launched >= state.job.total_blocks) continue;
    if (best == nullptr || state.running < best->running ||
        (state.running == best->running && state.seq < best->seq)) {
      best = &state;
    }
  }
  if (best == nullptr) return std::nullopt;
  TaskAssignment task;
  task.members = {best->job.id};
  task.block = best->launched;
  ++best->launched;
  ++best->running;
  return task;
}

void FairTaskScheduler::on_task_complete(const TaskAssignment& task,
                                         SimTime /*now*/) {
  const JobId job = task.members.front();
  for (auto it = active_.begin(); it != active_.end(); ++it) {
    if (it->job.id == job) {
      --it->running;
      ++it->completed;
      if (it->completed == it->job.total_blocks) active_.erase(it);
      return;
    }
  }
  S3_CHECK_MSG(false, "completion for unknown job " << job);
}

std::size_t FairTaskScheduler::pending_jobs() const { return active_.size(); }

// ---------------------------------------------------------------------------
// Capacity
// ---------------------------------------------------------------------------

CapacityTaskScheduler::CapacityTaskScheduler(int pools)
    : queues_(static_cast<std::size_t>(pools)) {
  S3_CHECK(pools > 0);
}

void CapacityTaskScheduler::on_job_arrival(const TaskSimJob& job,
                                           SimTime /*now*/) {
  const auto pool =
      static_cast<std::size_t>(job.pool) % queues_.size();
  job_pool_[job.id.value()] = static_cast<int>(pool);
  queues_[pool].push_back(State{job, 0, 0});
}

std::optional<TaskAssignment> CapacityTaskScheduler::pop_from(
    std::deque<State>& queue) {
  for (auto& state : queue) {
    if (state.launched < state.job.total_blocks) {
      TaskAssignment task;
      task.members = {state.job.id};
      task.block = state.launched;
      ++state.launched;
      return task;
    }
  }
  return std::nullopt;
}

std::optional<TaskAssignment> CapacityTaskScheduler::next_task(
    int slot_pool, SimTime /*now*/) {
  const auto own = static_cast<std::size_t>(slot_pool) % queues_.size();
  // Guaranteed capacity first, then borrow round-robin (work conserving).
  for (std::size_t probe = 0; probe < queues_.size(); ++probe) {
    auto task = pop_from(queues_[(own + probe) % queues_.size()]);
    if (task.has_value()) return task;
  }
  return std::nullopt;
}

void CapacityTaskScheduler::on_task_complete(const TaskAssignment& task,
                                             SimTime /*now*/) {
  const JobId job = task.members.front();
  const auto it = job_pool_.find(job.value());
  S3_CHECK_MSG(it != job_pool_.end(), "completion for unknown job " << job);
  auto& queue = queues_[static_cast<std::size_t>(it->second)];
  for (auto qit = queue.begin(); qit != queue.end(); ++qit) {
    if (qit->job.id == job) {
      ++qit->completed;
      if (qit->completed == qit->job.total_blocks) {
        queue.erase(qit);
        job_pool_.erase(it);
      }
      return;
    }
  }
  S3_CHECK_MSG(false, "job missing from its pool queue: " << job);
}

std::size_t CapacityTaskScheduler::pending_jobs() const {
  std::size_t total = 0;
  for (const auto& queue : queues_) total += queue.size();
  return total;
}

// ---------------------------------------------------------------------------
// Barrierless shared scan
// ---------------------------------------------------------------------------

SharedScanTaskScheduler::SharedScanTaskScheduler(std::uint64_t file_blocks)
    : file_blocks_(file_blocks) {
  S3_CHECK(file_blocks > 0);
}

void SharedScanTaskScheduler::on_job_arrival(const TaskSimJob& job,
                                             SimTime /*now*/) {
  S3_CHECK_MSG(job.total_blocks == file_blocks_,
               "shared-scan jobs must cover the common file exactly");
  active_.push_back(State{job, 0, 0});
}

std::optional<TaskAssignment> SharedScanTaskScheduler::next_task(
    int /*slot_pool*/, SimTime /*now*/) {
  TaskAssignment task;
  for (auto& state : active_) {
    if (state.launched < file_blocks_) {
      task.members.push_back(state.job.id);
      ++state.launched;
    }
  }
  if (task.members.empty()) return std::nullopt;
  task.block = cursor_;
  cursor_ = sched::advance_cursor(cursor_, 1, file_blocks_);
  ++launched_total_;
  return task;
}

void SharedScanTaskScheduler::on_task_complete(const TaskAssignment& task,
                                               SimTime /*now*/) {
  for (const JobId job : task.members) {
    for (auto it = active_.begin(); it != active_.end(); ++it) {
      if (it->job.id == job) {
        ++it->completed;
        if (it->completed == file_blocks_) active_.erase(it);
        break;
      }
    }
  }
}

std::size_t SharedScanTaskScheduler::pending_jobs() const {
  return active_.size();
}

}  // namespace s3::tasksim
